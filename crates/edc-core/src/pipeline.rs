//! The real-bytes EDC pipeline: a usable compressed block store.
//!
//! [`EdcPipeline`] is the library front-end of EDC for actual data (the
//! trace-replay experiments use [`crate::scheme`] instead, with modelled
//! content). Give it 4 KiB-aligned writes and it runs the full paper
//! pipeline — workload monitor, sequentiality detector, sampling
//! compressibility estimate, threshold-ladder codec selection, real
//! compression with the `edc-compress` codecs, quantized allocation — and
//! stores the result in an in-memory device image. Reads locate the run
//! via the mapping table, decompress according to the 3-bit tag, and
//! return the original bytes.
//!
//! # Batched multi-core writes
//!
//! The write path is *batched*: each flush trigger **seals** a run —
//! capturing the codec decision (hint, sampling estimate, intensity
//! ladder) at that instant, exactly as the serial path would — and queues
//! it. [`EdcPipeline::write_batch`] / [`EdcPipeline::flush_all`] then
//! **drain** the queue: all sealed runs are compressed at once, fanned
//! across `PipelineConfig::workers` threads into per-run reusable scratch
//! buffers ([`edc_compress::Codec::compress_into`], so the steady state
//! allocates nothing per run), and the results are applied — allocation,
//! device write, mapping update — serially in seal order. Compression is
//! a pure function, so the batched store is bit-identical to the serial
//! one; only the wall-clock differs.
//!
//! Reads consult a decompressed-run LRU ([`crate::cache::RunCache`])
//! keyed by the run's device offset; overwrites invalidate it. A hit
//! serves the read from DRAM, skipping both the device fetch and the
//! decompressor. Write-through runs bypass the cache entirely — their
//! payload already lies uncompressed in the device image and is copied
//! out directly.
//!
//! # Faults and crash recovery
//!
//! Every public entry point is fallible: failures come back as typed
//! [`crate::error::EdcError`] values, never panics. Arm a seeded
//! [`edc_flash::FaultPlan`] via [`PipelineConfig::fault`] (or
//! [`EdcPipeline::set_fault_plan`]) and the store injects transient read
//! faults (retried up to the plan's budget, then
//! [`ReadError::Unrecoverable`]), persistent per-page bit rot (caught by
//! the payload checksums), and a one-shot power cut after N page
//! programs. Committed runs are journaled ([`crate::journal`]) with
//! payload-then-commit ordering, so after a cut
//! [`EdcPipeline::recover`] rebuilds the mapping table with zero data
//! loss for every run whose commit record was durable.
//!
//! ```
//! use edc_core::pipeline::{BatchWrite, EdcPipeline, PipelineConfig};
//!
//! # fn main() -> Result<(), edc_core::error::EdcError> {
//! let mut store = EdcPipeline::new(1 << 20, PipelineConfig::default());
//! let block = vec![b'x'; 4096];
//! store.write(0, 0, &block)?;
//! store.flush(1_000_000)?; // or let the next read/non-contiguous write flush
//! assert_eq!(store.read(2_000_000, 0, 4096)?, block);
//!
//! // Batched: hand over many writes at once; sealed runs compress in
//! // parallel and the results come back in seal order.
//! let batch: Vec<BatchWrite<'_>> = (0..4)
//!     .map(|i| BatchWrite { now_ns: 3_000_000 + i, offset: (8 + 3 * i) * 4096, data: &block })
//!     .collect();
//! let results = store.write_batch(&batch)?;
//! let tail = store.flush_all(4_000_000)?;
//! assert_eq!(results.len() + tail.len(), 4);
//! # Ok(()) }
//! ```

use crate::allocator::{AllocPolicy, AllocStats, QuantizedAllocator};
use crate::cache::{CacheStats, RunCache};
use crate::dedup::{chunk_blocks, content_hash64, DedupConfig, DedupIndex, DedupReport, GearTable};
use crate::error::{EdcError, WriteError};
use crate::heat::{HeatConfig, HeatTracker, Temperature};
use crate::hints::{FileTypeHint, HintRegistry};
use crate::journal::{JournalRecord, MappingJournal, RecoveryError};
use crate::mapping::{BlockMap, MappingEntry};
use crate::monitor::WorkloadMonitor;
use crate::scheme::BLOCK_BYTES;
use crate::sd::{MergedRun, SdConfig, SequentialityDetector};
use crate::selector::{codec_strength, AlgorithmSelector, SelectorConfig};
use crate::slots::SlotStore;
use edc_compress::{
    checksum64, Codec, CodecId, CodecRegistry, CompressorState, DecompressError, Estimator,
    EstimatorConfig,
};
use edc_flash::{FaultError, FaultPlan, FaultState, FaultStats};
use edc_trace::{OpType, Request};
use std::collections::HashMap;

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Threshold ladder (calculated IOPS → codec).
    pub selector: SelectorConfig,
    /// Sequentiality-detector parameters.
    pub sd: SdConfig,
    /// Sampling-estimator parameters (includes the 75 % write-through rule).
    pub estimator: EstimatorConfig,
    /// Allocation policy.
    pub alloc: AllocPolicy,
    /// Worker threads compressing drained runs (1 = serial; results are
    /// bit-identical either way).
    pub workers: usize,
    /// Decompressed-run read-cache capacity, in runs (0 disables it).
    pub cache_runs: usize,
    /// Seeded fault-injection plan ([`FaultPlan::none`] by default).
    pub fault: FaultPlan,
    /// Store an XOR parity page with every run (one extra 4 KiB page per
    /// run, DESIGN.md §10). Parity lets [`EdcPipeline::scrub`] and the
    /// foreground read path reconstruct any single rotted payload page.
    /// Off by default — it trades space for self-healing.
    pub parity: bool,
    /// Shard id stamped into every journal record (bits 3–6 of the tag
    /// byte, DESIGN.md §11). 0 — the default, and what every pre-sharding
    /// journal implicitly carries — keeps the record stream byte-identical
    /// to the legacy format. Set by [`crate::shard::ShardedPipeline`] when
    /// it builds its per-shard pipelines; must be < 16.
    pub journal_shard: u8,
    /// Modelled per-device-access service time, ns (0 — the default —
    /// disables the model entirely). A real flash fetch or program costs
    /// tens of microseconds during which the host CPU is idle; sleeping
    /// for this long on every media touch lets accesses to *different*
    /// shards of a [`crate::shard::ShardedPipeline`] overlap in time while
    /// a single pipeline behind one lock cannot. Used by the concurrency
    /// benchmark; cache hits never pay it.
    pub device_dwell_ns: u64,
    /// Per-extent heat tracking and the background recompression policy
    /// ([`EdcPipeline::recompress_pass`], DESIGN.md §12).
    pub heat: HeatConfig,
    /// Content-defined dedup front-end (FastCDC chunking + refcounted
    /// content-addressed runs, DESIGN.md §14). Off by default — and with
    /// the toggle off the write path is bit-identical to a store built
    /// without dedup at all.
    pub dedup: DedupConfig,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            selector: SelectorConfig::default(),
            sd: SdConfig::default(),
            estimator: EstimatorConfig::default(),
            alloc: AllocPolicy::default(),
            workers: 1,
            cache_runs: 64,
            fault: FaultPlan::none(),
            parity: false,
            journal_shard: 0,
            device_dwell_ns: 0,
            heat: HeatConfig::default(),
            dedup: DedupConfig::default(),
        }
    }
}

/// One write in a [`EdcPipeline::write_batch`] call.
#[derive(Debug, Clone, Copy)]
pub struct BatchWrite<'a> {
    /// Arrival time, ns.
    pub now_ns: u64,
    /// Byte offset (4 KiB-aligned).
    pub offset: u64,
    /// Payload (whole 4 KiB blocks).
    pub data: &'a [u8],
}

/// A run whose codec decision is made but whose compression is deferred
/// to the next drain.
struct SealedRun {
    run: MergedRun,
    bytes: Vec<u8>,
    codec: CodecId,
}

/// Where a sealed chunk's duplicate content already lives (dedup probe
/// result, resolved and re-verified at commit time).
#[derive(Clone, Copy)]
enum DupTarget {
    /// A live stored run at this device offset.
    Existing(u64),
    /// The identical chunk at this index of the same drain, not yet
    /// stored at probe time; resolved through its committed offset.
    Earlier(usize),
}

/// What happened to a flushed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteResult {
    /// First logical block of the run.
    pub start_block: u64,
    /// Run length in blocks.
    pub blocks: u32,
    /// Codec actually used (`None` = written through).
    pub tag: CodecId,
    /// Compressed payload size (equals the raw size when written through).
    pub payload_bytes: u64,
    /// Flash bytes allocated (post-quantization).
    pub allocated_bytes: u64,
}

/// Errors from [`EdcPipeline::read`].
#[derive(Debug)]
pub enum ReadError {
    /// Stored payload failed to decompress — device image corruption.
    Corrupt(DecompressError),
    /// Stored payload hash does not match the mapping entry's checksum —
    /// silent corruption caught before decompression.
    ChecksumMismatch {
        /// First logical block of the damaged run.
        run_start: u64,
    },
    /// Read is not 4 KiB-aligned.
    Unaligned,
    /// Transient read faults exhausted the plan's retry budget.
    Unrecoverable {
        /// First logical block of the unreadable run.
        run_start: u64,
    },
    /// The store is powered off after a simulated power cut; call
    /// [`EdcPipeline::recover`] first.
    Offline,
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Corrupt(e) => write!(f, "stored data corrupt: {e}"),
            ReadError::ChecksumMismatch { run_start } => {
                write!(f, "checksum mismatch in run starting at block {run_start}")
            }
            ReadError::Unaligned => write!(f, "read must be 4 KiB aligned"),
            ReadError::Unrecoverable { run_start } => {
                write!(f, "run starting at block {run_start} unreadable after retries")
            }
            ReadError::Offline => {
                write!(f, "store is powered off after a power cut; recover() first")
            }
        }
    }
}

impl std::error::Error for ReadError {}

/// What [`EdcPipeline::recover`] reconstructed from the journal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Journal records scanned, including any torn/corrupt tail record.
    pub scanned_records: u64,
    /// Live runs restored into the mapping table.
    pub replayed_runs: u64,
    /// Journaled runs dropped because their payload no longer matched its
    /// checksum (zero under the pipeline's payload-then-commit ordering
    /// unless the image rotted after the crash).
    pub payload_mismatches: u64,
    /// Whether the journal ended in a torn or corrupt record.
    pub torn_tail: bool,
}

/// What a [`EdcPipeline::scrub`] pass found and did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Live runs walked.
    pub scanned: u64,
    /// Runs whose checksum, decode and parity page all verified.
    pub clean: u64,
    /// Runs with damage that parity reconstruction healed (payload repairs
    /// are rewritten out-of-place through the journal; a stale parity page
    /// over a healthy payload is refreshed in its slot).
    pub repaired: u64,
    /// Damaged runs parity could not reconstruct — left in place so a
    /// degraded read policy can still get at the raw bytes.
    pub unrecoverable: u64,
}

impl ScrubReport {
    /// Fold another report into this one (per-shard aggregation).
    pub fn merge(&mut self, other: &ScrubReport) {
        self.scanned += other.scanned;
        self.clean += other.clean;
        self.repaired += other.repaired;
        self.unrecoverable += other.unrecoverable;
    }
}

/// What one [`EdcPipeline::recompress_pass`] did (DESIGN.md §12).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecompressReport {
    /// Live runs examined.
    pub scanned: u64,
    /// Cold runs rewritten with the target codec.
    pub recompressed: u64,
    /// Hot near-incompressible runs rewritten as write-through.
    pub demoted: u64,
    /// Runs under a `FileTypeHint::Precompressed` range — never touched.
    pub skipped_precompressed: u64,
    /// Runs on extents already demoted to write-through — never
    /// re-promoted by the background pass.
    pub skipped_demoted: u64,
    /// Cold runs whose recompression would not shrink their slot (after
    /// quantization and any parity page) — left in place.
    pub skipped_no_gain: u64,
    /// Runs that could not be fetched/decoded this pass (transient read
    /// faults, damage) — left for scrub to deal with.
    pub skipped_unreadable: u64,
    /// Runs skipped because dedup sharing makes relocation unsafe this
    /// pass: a referrer (or the owner itself) is partially superseded, so
    /// rewriting the full run range would resurrect stale blocks.
    pub skipped_shared: u64,
    /// Flash bytes freed by recompression (old slot minus new slot).
    pub bytes_reclaimed: u64,
}

impl RecompressReport {
    /// Fold another report into this one (per-shard aggregation).
    pub fn merge(&mut self, other: &RecompressReport) {
        self.scanned += other.scanned;
        self.recompressed += other.recompressed;
        self.demoted += other.demoted;
        self.skipped_precompressed += other.skipped_precompressed;
        self.skipped_demoted += other.skipped_demoted;
        self.skipped_no_gain += other.skipped_no_gain;
        self.skipped_unreadable += other.skipped_unreadable;
        self.skipped_shared += other.skipped_shared;
        self.bytes_reclaimed += other.bytes_reclaimed;
    }
}

/// A consistent snapshot of a pipeline's counters, designed to aggregate:
/// [`crate::shard::ShardedPipeline::stats`] merges one per shard into a
/// fleet-wide view.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PipelineStats {
    /// Cumulative logical bytes accepted.
    pub logical_written: u64,
    /// Cumulative flash bytes allocated.
    pub physical_written: u64,
    /// 4 KiB blocks currently mapped.
    pub mapped_blocks: u64,
    /// Live (deduplicated) runs currently mapped.
    pub live_runs: u64,
    /// Committed runs journaled so far.
    pub journal_records: u64,
    /// Journal size in bytes.
    pub journal_bytes: u64,
    /// Reads served raw despite a checksum mismatch.
    pub degraded_reads: u64,
    /// Cumulative page programs — the power-cut clock position.
    pub programs: u64,
    /// Cold runs rewritten with a stronger codec by background
    /// recompression, cumulative.
    pub recompressed_runs: u64,
    /// Hot runs demoted to write-through by background recompression,
    /// cumulative.
    pub demoted_runs: u64,
    /// Read-cache counters.
    pub cache: CacheStats,
    /// Writes elided entirely because their content already lived in a
    /// stored run (dedup hits), cumulative.
    pub dedup_hits: u64,
    /// Logical bytes those hits never compressed or programmed.
    pub dedup_elided_bytes: u64,
}

impl PipelineStats {
    /// Fold another pipeline's counters into this one.
    pub fn merge(&mut self, other: &PipelineStats) {
        self.logical_written += other.logical_written;
        self.physical_written += other.physical_written;
        self.mapped_blocks += other.mapped_blocks;
        self.live_runs += other.live_runs;
        self.journal_records += other.journal_records;
        self.journal_bytes += other.journal_bytes;
        self.degraded_reads += other.degraded_reads;
        self.programs += other.programs;
        self.recompressed_runs += other.recompressed_runs;
        self.demoted_runs += other.demoted_runs;
        self.cache.merge(&other.cache);
        self.dedup_hits += other.dedup_hits;
        self.dedup_elided_bytes += other.dedup_elided_bytes;
    }

    /// The paper's compression ratio over everything written (1.0 when
    /// nothing was stored yet).
    pub fn compression_ratio(&self) -> f64 {
        if self.physical_written == 0 {
            return 1.0;
        }
        self.logical_written as f64 / self.physical_written as f64
    }
}

/// An EDC-compressed block store over an in-memory device image.
pub struct EdcPipeline {
    config: PipelineConfig,
    monitor: WorkloadMonitor,
    selector: AlgorithmSelector,
    sd: SequentialityDetector,
    estimator: Estimator,
    allocator: QuantizedAllocator,
    slots: SlotStore,
    map: BlockMap,
    /// Device image: compressed payloads live at their slot offsets.
    device: Vec<u8>,
    /// Bytes of the run currently buffered in the SD.
    pending: Vec<u8>,
    /// Runs sealed (codec decided) but not yet compressed/stored. Lives
    /// only within a single public call: every entry point drains it.
    sealed: Vec<SealedRun>,
    /// Reusable compression output buffers, one per in-flight drain job.
    scratch: Vec<Vec<u8>>,
    /// Pooled per-worker codec states (hash tables, chains, Huffman
    /// scratch). Entry `i` is owned by worker `i` for the duration of a
    /// drain, so steady-state compression allocates nothing.
    codec_states: Vec<CompressorState>,
    /// Recycled decompressed-run buffers for the read path (bounded).
    read_buf_pool: Vec<Vec<u8>>,
    /// Decompressed-run LRU, keyed by device offset (unique per live run).
    cache: RunCache<Vec<u8>>,
    /// File-type semantic hints (paper §VI future work #1).
    hints: HintRegistry,
    /// Durable record of committed mapping insertions, replayed by
    /// [`EdcPipeline::recover`].
    journal: MappingJournal,
    /// Seeded fault-decision stream (inactive by default).
    faults: FaultState,
    /// Decayed per-extent heat, updated on the read/write hot paths and
    /// consulted by [`EdcPipeline::recompress_pass`]. Volatile: reset on
    /// recovery, like the monitor state.
    heat: HeatTracker,
    /// Reads served raw despite a checksum mismatch (opt-in degradation).
    degraded_reads: u64,
    /// Cumulative background-recompression outcomes (see
    /// [`PipelineStats`]).
    recompressed_runs: u64,
    demoted_runs: u64,
    /// Seeded gear table for the content-defined chunker (built once).
    gear: GearTable,
    /// Content-addressed run index + refcount ledger (DESIGN.md §14).
    dedup: DedupIndex,
    /// Cumulative dedup-hit counters (see [`PipelineStats`]).
    dedup_hits: u64,
    dedup_elided_bytes: u64,
    logical_written: u64,
    physical_written: u64,
}

impl EdcPipeline {
    /// Create a store over `capacity_bytes` of device space.
    pub fn new(capacity_bytes: u64, config: PipelineConfig) -> Self {
        assert!(capacity_bytes >= BLOCK_BYTES, "capacity below one block");
        EdcPipeline {
            selector: AlgorithmSelector::new(config.selector.clone()),
            sd: SequentialityDetector::new(config.sd),
            estimator: Estimator::new(config.estimator),
            allocator: QuantizedAllocator::new(config.alloc),
            slots: SlotStore::new(capacity_bytes),
            map: BlockMap::new(),
            device: vec![0; capacity_bytes as usize],
            pending: Vec::new(),
            sealed: Vec::new(),
            scratch: Vec::new(),
            codec_states: Vec::new(),
            read_buf_pool: Vec::new(),
            cache: RunCache::new(config.cache_runs),
            hints: HintRegistry::new(),
            journal: MappingJournal::with_shard(config.journal_shard),
            faults: FaultState::new(config.fault),
            heat: HeatTracker::new(config.heat),
            degraded_reads: 0,
            recompressed_runs: 0,
            demoted_runs: 0,
            gear: GearTable::new(config.dedup.seed),
            dedup: DedupIndex::new(),
            dedup_hits: 0,
            dedup_elided_bytes: 0,
            monitor: WorkloadMonitor::default(),
            logical_written: 0,
            physical_written: 0,
            config,
        }
    }

    /// Write `data` (a multiple of 4 KiB) at byte `offset` (4 KiB-aligned)
    /// at time `now_ns`. Returns the result of any run this write flushed;
    /// the written data itself is buffered until a flush trigger.
    pub fn write(
        &mut self,
        now_ns: u64,
        offset: u64,
        data: &[u8],
    ) -> Result<Option<WriteResult>, EdcError> {
        Ok(self.write_batch(&[BatchWrite { now_ns, offset, data }])?.pop())
    }

    /// Accept a batch of writes at once. Runs sealed during the batch are
    /// compressed together at the end, fanned across
    /// [`PipelineConfig::workers`] threads; results come back in seal
    /// order and are bit-identical to issuing the same writes serially.
    ///
    /// The whole batch is validated before any write is accepted, so an
    /// alignment error leaves the store untouched.
    pub fn write_batch(&mut self, writes: &[BatchWrite<'_>]) -> Result<Vec<WriteResult>, EdcError> {
        Ok(self.write_batch_indexed(writes)?.into_iter().map(|(_, r)| r).collect())
    }

    /// [`EdcPipeline::write_batch`] with provenance: every flushed run is
    /// paired with the index of the batch entry whose acceptance sealed
    /// it, so a caller multiplexing independent submitters over one batch
    /// (the ring front-end) can attribute each result to the submission
    /// that caused it. Dedup chunking may split one sealed run into
    /// several results; all of them carry the sealing entry's index. Runs
    /// sealed before the batch began are attributed to entry 0. Results
    /// come back in seal order, exactly as [`EdcPipeline::write_batch`]
    /// returns them.
    pub fn write_batch_indexed(
        &mut self,
        writes: &[BatchWrite<'_>],
    ) -> Result<Vec<(usize, WriteResult)>, EdcError> {
        self.check_powered()?;
        for w in writes {
            if !w.offset.is_multiple_of(BLOCK_BYTES)
                || w.data.is_empty()
                || !(w.data.len() as u64).is_multiple_of(BLOCK_BYTES)
            {
                return Err(WriteError::Unaligned.into());
            }
        }
        // One `(owner entry, run blocks)` pair per sealed run, in seal
        // order. Dedup chunking splits runs but never reorders them, and
        // a run's chunks partition its blocks exactly — so walking the
        // drained results while summing block counts recovers which
        // sealed run (hence which entry) each result came from.
        let mut owners: Vec<(usize, u32)> =
            self.sealed.iter().map(|s| (0usize, s.run.blocks)).collect();
        for (i, w) in writes.iter().enumerate() {
            let start = w.offset / BLOCK_BYTES;
            let blocks = (w.data.len() as u64 / BLOCK_BYTES) as u32;
            self.monitor.record(&Request {
                arrival_ns: w.now_ns,
                op: OpType::Write,
                offset: w.offset,
                len: w.data.len() as u32,
            });
            self.logical_written += w.data.len() as u64;
            self.heat.record(w.now_ns, start, u64::from(blocks));
            if let Some(run) = self.sd.on_write(start, blocks, w.now_ns) {
                let bytes = std::mem::take(&mut self.pending);
                self.seal_run(w.now_ns, run, bytes);
                owners.push((i, self.sealed.last().expect("just sealed").run.blocks));
            }
            self.pending.extend_from_slice(w.data);
        }
        let results = self.drain_sealed()?;
        let mut indexed = Vec::with_capacity(results.len());
        let mut runs = owners.into_iter();
        let mut cur = runs.next();
        let mut seen = 0u32;
        for r in results {
            let (owner, total) = cur.expect("more results than sealed runs");
            seen += r.blocks;
            indexed.push((owner, r));
            if seen >= total {
                debug_assert_eq!(seen, total, "chunk blocks must partition the run");
                cur = runs.next();
                seen = 0;
            }
        }
        debug_assert!(cur.is_none(), "sealed run left without a result");
        Ok(indexed)
    }

    /// Register a file-type hint for the byte range `[offset, offset+len)`
    /// (4 KiB-aligned). An upper layer that knows the content type of a
    /// range uses this to constrain EDC's codec choice — the paper's §VI
    /// future work #1.
    pub fn set_hint(&mut self, offset: u64, len: u64, hint: FileTypeHint) {
        assert!(offset.is_multiple_of(BLOCK_BYTES) && len.is_multiple_of(BLOCK_BYTES), "hint range must be aligned");
        self.hints.set(offset / BLOCK_BYTES, len / BLOCK_BYTES, hint);
    }

    /// Force-flush the buffered run (timeout, shutdown).
    pub fn flush(&mut self, now_ns: u64) -> Result<Option<WriteResult>, EdcError> {
        Ok(self.flush_all(now_ns)?.pop())
    }

    /// Drain everything: the run buffered in the sequentiality detector
    /// (if any) plus all sealed-but-unstored runs, compressing across the
    /// configured workers. Returns one result per stored run, in order.
    pub fn flush_all(&mut self, now_ns: u64) -> Result<Vec<WriteResult>, EdcError> {
        self.check_powered()?;
        if let Some(run) = self.sd.drain() {
            let bytes = std::mem::take(&mut self.pending);
            self.seal_run(now_ns, run, bytes);
        }
        self.drain_sealed()
    }

    /// Typed guard used by every entry point: a store that lost power
    /// rejects I/O until [`EdcPipeline::recover`] runs.
    fn check_powered(&self) -> Result<(), EdcError> {
        if self.faults.powered() {
            Ok(())
        } else {
            Err(WriteError::Offline.into())
        }
    }

    /// Sleep for the configured per-device-access service time (see
    /// [`PipelineConfig::device_dwell_ns`]). A no-op at the default 0.
    fn device_dwell(&self) {
        let ns = self.config.device_dwell_ns;
        if ns > 0 {
            std::thread::sleep(std::time::Duration::from_nanos(ns));
        }
    }

    /// Read `len` bytes at `offset` (both 4 KiB-aligned). Unwritten blocks
    /// read as zeroes, as on a real device.
    pub fn read(&mut self, now_ns: u64, offset: u64, len: u64) -> Result<Vec<u8>, ReadError> {
        if !offset.is_multiple_of(BLOCK_BYTES) || !len.is_multiple_of(BLOCK_BYTES) {
            return Err(ReadError::Unaligned);
        }
        if !self.faults.powered() {
            return Err(ReadError::Offline);
        }
        self.monitor.record(&Request {
            arrival_ns: now_ns,
            op: OpType::Read,
            offset,
            len: len as u32,
        });
        // Reads break write sequentiality: flush first (paper §III-E).
        if let Some(run) = self.sd.on_read() {
            let bytes = std::mem::take(&mut self.pending);
            self.seal_run(now_ns, run, bytes);
        }
        // The only failure the read-triggered flush can hit is a power
        // cut (codecs were validated at seal time), which leaves the
        // store offline.
        if self.drain_sealed().is_err() {
            return Err(ReadError::Offline);
        }
        let mut out = vec![0u8; len as usize];
        let start = offset / BLOCK_BYTES;
        let blocks = len / BLOCK_BYTES;
        self.heat.record(now_ns, start, blocks);
        let bb = BLOCK_BYTES as usize;
        // Walk block by block, consulting each block's OWN mapping entry —
        // a neighbouring block may belong to an older run that still covers
        // this block's address range, and copying from that run would
        // resurrect superseded data.
        //
        // Write-through runs are copied straight out of the device image
        // (their payload IS the raw bytes — no decompression, no cache).
        // Compressed runs are served from the decompressed-run LRU when
        // possible; when the cache is disabled, a local memo still avoids
        // re-decoding a run shared by consecutive blocks.
        let mut verified_off = u64::MAX; // write-through run already checksummed
        let mut local_off = u64::MAX; // run held in `local_run` (cache disabled)
        let mut local_run: Vec<u8> = Vec::new();
        for b in start..start + blocks {
            let Some(entry) = self.map.get(b) else {
                continue;
            };
            let src = ((b - entry.run_start) * BLOCK_BYTES) as usize;
            let dst = ((b - start) * BLOCK_BYTES) as usize;
            if entry.tag == CodecId::None {
                if verified_off != entry.device_offset {
                    self.fault_device_access(&entry)?;
                    if let Err(e) = self.verify_checksum(&entry) {
                        // Parity reconstruction first; failing that, a
                        // write-through payload IS the raw data, so a
                        // campaign may opt in to serving it despite the
                        // mismatch instead of failing the read.
                        if self.try_parity_repair(&entry) {
                            // repaired in place; payload now verifies
                        } else if self.faults.plan().allow_degraded_reads {
                            self.degraded_reads += 1;
                        } else {
                            return Err(e);
                        }
                    }
                    verified_off = entry.device_offset;
                }
                let at = entry.device_offset as usize + src;
                out[dst..dst + bb].copy_from_slice(&self.device[at..at + bb]);
                continue;
            }
            if local_off == entry.device_offset {
                out[dst..dst + bb].copy_from_slice(&local_run[src..src + bb]);
                continue;
            }
            if let Some(run) = self.cache.lookup(entry.device_offset) {
                out[dst..dst + bb].copy_from_slice(&run[src..src + bb]);
                continue;
            }
            // Decompress into a recycled buffer; on a cache insert the
            // displaced run's buffer comes back for the next miss, so a
            // warm read path stops allocating entirely.
            let mut run = self.read_buf_pool.pop().unwrap_or_default();
            if let Err(e) = self.decompress_run_into(&entry, &mut run) {
                self.recycle_read_buf(run);
                return Err(e);
            }
            out[dst..dst + bb].copy_from_slice(&run[src..src + bb]);
            if self.cache.enabled() {
                if let Some(displaced) = self.cache.insert(entry.device_offset, run) {
                    self.recycle_read_buf(displaced);
                }
                local_off = u64::MAX;
            } else {
                local_off = entry.device_offset;
                self.recycle_read_buf(std::mem::replace(&mut local_run, run));
            }
        }
        self.recycle_read_buf(local_run);
        Ok(out)
    }

    /// Return a spent decompression buffer to the bounded read pool.
    ///
    /// Pool invariant: every pooled buffer is exclusively owned — the
    /// same allocation must never simultaneously sit in the pool and in
    /// the read cache (or twice in the pool). `RunCache::invalidate` and
    /// `RunCache::insert` uphold this by *moving* the buffer out of the
    /// cache before it reaches here; the debug assertion pins the
    /// contract so a future "peek then recycle" refactor cannot silently
    /// create two owners of one run's bytes. (Live `Vec` allocations
    /// with nonzero capacity have distinct base pointers, so pointer
    /// identity is a sound aliasing check.)
    fn recycle_read_buf(&mut self, mut buf: Vec<u8>) {
        const POOL_RUNS: usize = 8;
        if self.read_buf_pool.len() < POOL_RUNS && buf.capacity() > 0 {
            debug_assert!(
                self.read_buf_pool.iter().all(|b| !std::ptr::eq(b.as_ptr(), buf.as_ptr())),
                "recycled buffer is already in the read pool"
            );
            debug_assert!(
                self.cache.values().all(|v| !std::ptr::eq(v.as_ptr(), buf.as_ptr())),
                "recycled buffer is still resident in the read cache"
            );
            buf.clear();
            self.read_buf_pool.push(buf);
        }
    }

    /// Draw the fault plan's read-path decisions before touching the
    /// device image at `entry`'s slot: transient read faults (retried up
    /// to the plan's budget, then [`ReadError::Unrecoverable`]) and
    /// persistent bit rot, flipped directly into the stored payload so
    /// the checksum audit downstream catches it. Cache hits never get
    /// here — decompressed runs live in DRAM.
    fn fault_device_access(&mut self, entry: &MappingEntry) -> Result<(), ReadError> {
        self.device_dwell();
        if !self.faults.plan().is_active() {
            return Ok(());
        }
        let retries = self.faults.plan().read_retries;
        let mut attempt = 0u32;
        while self.faults.read_fault() {
            if attempt >= retries {
                return Err(ReadError::Unrecoverable { run_start: entry.run_start });
            }
            attempt += 1;
        }
        if let Some(bit) = self.faults.bit_rot() {
            let bits = entry.compressed_bytes.max(1) * 8;
            let bit = u64::from(bit) % bits;
            let at = (entry.device_offset + bit / 8) as usize;
            self.device[at] ^= 1 << (bit % 8);
        }
        Ok(())
    }

    /// Check a stored payload against its mapping-entry checksum. Catches
    /// silent corruption that would otherwise decode "successfully" to
    /// wrong bytes (or, written through, be returned verbatim).
    fn verify_checksum(&self, entry: &MappingEntry) -> Result<(), ReadError> {
        let off = entry.device_offset as usize;
        let payload = &self.device[off..off + entry.compressed_bytes as usize];
        if checksum64(payload, entry.run_start) != entry.checksum {
            return Err(ReadError::ChecksumMismatch { run_start: entry.run_start });
        }
        Ok(())
    }

    /// Verify and decompress a compressed run's payload from the device
    /// image into `out` (cleared first — pass a pooled buffer to skip the
    /// allocation). Callers handle `CodecId::None` themselves (the payload
    /// is the raw data; copying it out wholesale would be a wasted
    /// allocation). A compressed run's checksum mismatch is always a hard
    /// error — unlike a write-through run there is no raw payload to
    /// degrade to.
    fn decompress_run_into(
        &mut self,
        entry: &MappingEntry,
        out: &mut Vec<u8>,
    ) -> Result<(), ReadError> {
        self.fault_device_access(entry)?;
        if let Err(e) = self.verify_checksum(entry) {
            // Foreground read-repair: a run carrying parity can rebuild a
            // single rotted page right now instead of failing the read.
            if !self.try_parity_repair(entry) {
                return Err(e);
            }
        }
        self.decode_payload(entry, out)
    }

    /// Decode a compressed run's (already verified) payload straight from
    /// the device image — no fault injection, no checksum, so the scrubber
    /// can audit a run without re-drawing from the fault stream.
    fn decode_payload(&self, entry: &MappingEntry, out: &mut Vec<u8>) -> Result<(), ReadError> {
        let off = entry.device_offset as usize;
        let payload = &self.device[off..off + entry.compressed_bytes as usize];
        let original = (u64::from(entry.run_blocks) * BLOCK_BYTES) as usize;
        // A `None` tag cannot reach here (the caller branched on it), but
        // the typed path keeps this panic-free regardless.
        let codec = CodecRegistry::get(entry.tag)
            .map_err(|_| ReadError::Unrecoverable { run_start: entry.run_start })?;
        codec.decompress_into(payload, original, out).map_err(ReadError::Corrupt)
    }

    /// Try to reconstruct a single damaged payload page from the run's XOR
    /// parity page. Each payload page in turn is treated as the casualty
    /// and rebuilt as parity ⊕ (every other page); a candidate wins when
    /// the payload re-hashes to the journaled checksum (and, for a
    /// compressed run, decodes in full). On success the rebuilt bytes are
    /// patched into the device image — the payload again matches its
    /// journaled checksum, so crash recovery's audit stays satisfied
    /// without a new journal record — and `true` is returned.
    fn try_parity_repair(&mut self, entry: &MappingEntry) -> bool {
        if !entry.parity || entry.stored_bytes <= BLOCK_BYTES {
            return false;
        }
        let bb = BLOCK_BYTES as usize;
        let off = entry.device_offset as usize;
        let plen = entry.compressed_bytes as usize;
        let parity_at = off + entry.stored_bytes as usize - bb;
        let mut candidate = self.device[off..off + plen].to_vec();
        for page in 0..plen.div_ceil(bb).max(1) {
            // Rebuild this page from the parity and all the others.
            let mut rebuilt: Vec<u8> = self.device[parity_at..parity_at + bb].to_vec();
            for (j, chunk) in candidate.chunks(bb).enumerate() {
                if j == page {
                    continue;
                }
                for (d, s) in rebuilt.iter_mut().zip(chunk) {
                    *d ^= s;
                }
            }
            let lo = page * bb;
            let hi = (lo + bb).min(plen);
            let damaged = candidate[lo..hi].to_vec();
            candidate[lo..hi].copy_from_slice(&rebuilt[..hi - lo]);
            let plausible = checksum64(&candidate, entry.run_start) == entry.checksum;
            let decodes = plausible
                && (entry.tag == CodecId::None
                    || CodecRegistry::get(entry.tag).is_ok_and(|codec| {
                        let original = (u64::from(entry.run_blocks) * BLOCK_BYTES) as usize;
                        let mut out = Vec::new();
                        codec.decompress_into(&candidate, original, &mut out).is_ok()
                    }));
            if decodes {
                self.device[off + lo..off + hi].copy_from_slice(&candidate[lo..hi]);
                return true;
            }
            candidate[lo..hi].copy_from_slice(&damaged);
        }
        false
    }

    /// The decision half of the pipeline: hint → estimate → select. Runs
    /// at the moment the flush trigger fires, against the monitor state of
    /// that instant, so the chosen codec is exactly the serial path's.
    /// Compression itself is deferred to the drain.
    fn seal_run(&mut self, now_ns: u64, run: MergedRun, bytes: Vec<u8>) {
        debug_assert_eq!(bytes.len() as u64, run.bytes(), "SD buffer out of sync");
        let hint = self.hints.lookup(run.start_block);
        // 0. A semantic hint can settle the question without sampling.
        let codec = if hint.is_some_and(FileTypeHint::settles_compressibility) {
            CodecId::None
        } else if self.estimator.is_incompressible(&bytes) {
            // 1. Sampling compressibility check.
            CodecId::None
        } else {
            // 2. Intensity ladder, constrained by any hint.
            let choice = self.selector.select(self.monitor.calculated_iops(now_ns));
            hint.map_or(choice, |h| h.constrain(choice))
        };
        self.sealed.push(SealedRun { run, bytes, codec });
    }

    /// The storage half: resolve duplicates against the content-addressed
    /// index (dedup on), compress every remaining sealed run (parallel
    /// when configured), then allocate + program + journal + map serially
    /// in seal order. Each run's payload pages are programmed against the
    /// power-cut clock *before* its journal commit record, so a cut can
    /// orphan a payload but never journal a run whose payload is missing.
    fn drain_sealed(&mut self) -> Result<Vec<WriteResult>, EdcError> {
        if self.sealed.is_empty() {
            return Ok(Vec::new());
        }
        if self.config.dedup.enabled {
            self.chunk_sealed();
        }
        // Codec lookups are validated before the queue is consumed, so a
        // (theoretically) bad tag surfaces as a typed error without
        // dropping any queued run.
        for s in &self.sealed {
            if s.codec != CodecId::None {
                CodecRegistry::get(s.codec)?;
            }
        }
        let sealed = std::mem::take(&mut self.sealed);
        // Dedup probe: hash every chunk's raw bytes and resolve it to a
        // live stored run with identical content (byte-compared before
        // sharing — a hash collision is only ever a wasted compare) or to
        // an identical earlier chunk of this same drain. Resolved chunks
        // skip compression, allocation and payload programming entirely.
        let mut dups: Vec<Option<DupTarget>> = vec![None; sealed.len()];
        let mut hashes: Vec<u64> = vec![0u64; sealed.len()];
        if self.config.dedup.enabled {
            let mut batch_by_hash: HashMap<u64, usize> = HashMap::new();
            let mut cmp = self.read_buf_pool.pop().unwrap_or_default();
            for (i, s) in sealed.iter().enumerate() {
                let h = content_hash64(&s.bytes, self.config.dedup.seed);
                hashes[i] = h;
                for &off in self.dedup.candidates(h) {
                    let Some(t) = self.dedup.template(off) else { continue };
                    if t.run_blocks != s.run.blocks {
                        continue;
                    }
                    if self.chunk_matches_stored(t, &s.bytes, &mut cmp) {
                        dups[i] = Some(DupTarget::Existing(off));
                        break;
                    }
                }
                if dups[i].is_none() {
                    match batch_by_hash.get(&h) {
                        Some(&j) if sealed[j].bytes == s.bytes => {
                            dups[i] = Some(DupTarget::Earlier(j));
                        }
                        Some(_) => {}
                        None => {
                            batch_by_hash.insert(h, i);
                        }
                    }
                }
            }
            self.recycle_read_buf(cmp);
        }
        // Phase 1: compression, the CPU-heavy pure part, fanned across
        // workers. Each job writes into a scratch buffer recycled from
        // previous drains, so the steady state performs no output
        // allocations at all. Resolved duplicates never compress.
        let n_jobs = sealed
            .iter()
            .enumerate()
            .filter(|(i, s)| s.codec != CodecId::None && dups[*i].is_none())
            .count();
        while self.scratch.len() < n_jobs {
            self.scratch.push(Vec::new());
        }
        let mut bufs = self.scratch.split_off(self.scratch.len() - n_jobs);
        {
            let mut work: Vec<(&'static dyn Codec, &[u8], &mut Vec<u8>)> = sealed
                .iter()
                .enumerate()
                .filter(|(i, s)| s.codec != CodecId::None && dups[*i].is_none())
                .map(|(_, s)| s)
                .zip(bufs.iter_mut())
                .filter_map(|(s, buf)| {
                    CodecRegistry::get(s.codec).ok().map(|c| (c, s.bytes.as_slice(), buf))
                })
                .collect();
            let workers = self.config.workers.max(1).min(work.len());
            // Pooled per-worker codec states: scratch tables and Huffman
            // buffers survive across drains, so steady-state compression
            // performs no codec-side allocation at all.
            while self.codec_states.len() < workers.max(1) {
                self.codec_states.push(CompressorState::new());
            }
            if workers <= 1 {
                let state = &mut self.codec_states[0];
                for (codec, data, out) in work.iter_mut() {
                    codec.compress_with(state, data, out);
                }
            } else {
                // Contiguous chunks keep the scatter trivially
                // order-preserving: every job owns its own output buffer
                // and every worker owns its own codec state.
                let per_worker = work.len().div_ceil(workers);
                std::thread::scope(|scope| {
                    for (part, state) in
                        work.chunks_mut(per_worker).zip(self.codec_states.iter_mut())
                    {
                        scope.spawn(move || {
                            for (codec, data, out) in part.iter_mut() {
                                codec.compress_with(state, data, out);
                            }
                        });
                    }
                });
            }
        }
        // Phase 2: allocation, device write, mapping — stateful, applied
        // serially in seal order, which makes the whole drain equivalent
        // to processing each run at its seal point.
        let mut results = Vec::with_capacity(sealed.len());
        let mut stored_at: Vec<u64> = vec![u64::MAX; sealed.len()];
        let mut buf_idx = 0usize;
        for (i, s) in sealed.iter().enumerate() {
            // A resolved duplicate shares the stored run instead of
            // writing: the slot and the refcount ledger take the new
            // block references first, then the `Ref` commit record is
            // journaled (new-ref-then-commit: a cut can orphan a taken
            // reference — volatile state recovery rebuilds anyway — but
            // never journal a reference that was not taken), then the
            // mapping re-points. The target is re-verified at commit
            // time, because an earlier chunk of this very drain may have
            // superseded it; a stale target demotes the chunk to an
            // ordinary unique store.
            if let Some(target) = dups[i] {
                let off = match target {
                    DupTarget::Existing(off) => off,
                    DupTarget::Earlier(j) => stored_at[j],
                };
                let template = self.dedup.template(off).copied();
                let usable = template.is_some_and(|t| t.run_blocks == s.run.blocks) && {
                    let t = template.expect("template checked above");
                    let mut cmp = self.read_buf_pool.pop().unwrap_or_default();
                    let ok = self.chunk_matches_stored(&t, &s.bytes, &mut cmp);
                    self.recycle_read_buf(cmp);
                    ok
                };
                if usable {
                    let template = template.expect("template checked above");
                    let o = template.device_offset as usize;
                    let sharer = MappingEntry {
                        run_start: s.run.start_block,
                        run_blocks: s.run.blocks,
                        checksum: checksum64(
                            &self.device[o..o + template.compressed_bytes as usize],
                            s.run.start_block,
                        ),
                        ..template
                    };
                    self.slots.add_run_refs(off, s.run.blocks);
                    self.dedup.add_referrer(off, s.run.start_block, s.run.blocks);
                    if let Err(e) = self.faults.program_page() {
                        return Err(fault_to_edc(e));
                    }
                    self.journal.append_ref(&sharer, hashes[i]);
                    for old in self.map.insert_run(sharer) {
                        self.release_superseded(&old);
                    }
                    self.dedup_hits += 1;
                    self.dedup_elided_bytes += s.bytes.len() as u64;
                    stored_at[i] = off;
                    results.push(WriteResult {
                        start_block: s.run.start_block,
                        blocks: s.run.blocks,
                        tag: template.tag,
                        payload_bytes: template.compressed_bytes,
                        allocated_bytes: 0,
                    });
                    continue;
                }
                // Stale target: store as a fresh unique run, compressing
                // serially on the spot (its parallel slot was skipped).
                let comp = if s.codec == CodecId::None {
                    None
                } else {
                    if self.codec_states.is_empty() {
                        self.codec_states.push(CompressorState::new());
                    }
                    let mut out = self.scratch.pop().unwrap_or_default();
                    let codec = CodecRegistry::get(s.codec)?;
                    codec.compress_with(&mut self.codec_states[0], &s.bytes, &mut out);
                    Some(out)
                };
                let (result, entry) = self.store_chunk(s, comp.as_deref())?;
                if let Some(mut out) = comp {
                    out.clear();
                    self.scratch.push(out);
                }
                self.dedup.insert_unique(Some(hashes[i]), entry);
                stored_at[i] = entry.device_offset;
                results.push(result);
                continue;
            }
            let comp = if s.codec == CodecId::None {
                None
            } else {
                let b = &bufs[buf_idx];
                buf_idx += 1;
                Some(b.as_slice())
            };
            let (result, entry) = self.store_chunk(s, comp)?;
            if self.config.dedup.enabled {
                self.dedup.insert_unique(Some(hashes[i]), entry);
            }
            stored_at[i] = entry.device_offset;
            results.push(result);
        }
        // Return the scratch buffers (capacity intact) for the next drain.
        self.scratch.extend(bufs.into_iter().map(|mut b| {
            b.clear();
            b
        }));
        Ok(results)
    }

    /// Store one sealed chunk as a fresh unique run: quantized placement
    /// (with the keep-raw-if-not-smaller fallback), slot allocation,
    /// payload (+ parity) pages programmed page by page against the
    /// power-cut clock — a cut mid-run leaves a partial payload with no
    /// commit record, exactly what recovery expects — then the journal
    /// commit record and the mapping update. Returns the write result
    /// and the committed mapping entry.
    fn store_chunk(
        &mut self,
        s: &SealedRun,
        comp: Option<&[u8]>,
    ) -> Result<(WriteResult, MappingEntry), EdcError> {
        let comp_len = comp.map_or(s.bytes.len(), <[u8]>::len) as u64;
        // Quantized allocation (with the 75 % fallback).
        let prev = self
            .map
            .get(s.run.start_block)
            .filter(|e| e.run_start == s.run.start_block && e.run_blocks == s.run.blocks);
        let placement =
            self.allocator.place(s.bytes.len() as u64, comp_len, prev.map(|e| e.stored_bytes));
        let (tag, payload): (CodecId, &[u8]) = match comp {
            Some(b) if placement.compressed => (s.codec, b),
            _ => (CodecId::None, &s.bytes),
        };
        // The slot is referenced by every block of the run and frees only
        // when all are superseded. With parity on, the slot grows by one
        // page holding the XOR of the payload's zero-padded pages,
        // programmed after the payload and before the commit record.
        let parity = self.config.parity;
        let stored_bytes = placement.allocated_bytes + if parity { BLOCK_BYTES } else { 0 };
        let device_offset = self.slots.alloc_run(stored_bytes, s.run.blocks);
        let off = device_offset as usize;
        let bb = BLOCK_BYTES as usize;
        for page in 0..payload.len().div_ceil(bb).max(1) {
            if let Err(e) = self.faults.program_page() {
                return Err(fault_to_edc(e));
            }
            let lo = page * bb;
            let hi = (lo + bb).min(payload.len());
            self.device[off + lo..off + hi].copy_from_slice(&payload[lo..hi]);
        }
        if parity {
            if let Err(e) = self.faults.program_page() {
                return Err(fault_to_edc(e));
            }
            let page = xor_parity(payload);
            let at = off + stored_bytes as usize - bb;
            self.device[at..at + bb].copy_from_slice(&page);
        }
        // One dwell per stored run: the media is busy programming the
        // run's pages while this shard's lock is held, and sleeps on
        // different shards overlap.
        self.device_dwell();
        self.physical_written += stored_bytes;
        let entry = MappingEntry {
            tag,
            run_start: s.run.start_block,
            run_blocks: s.run.blocks,
            device_offset,
            stored_bytes,
            compressed_bytes: payload.len() as u64,
            checksum: checksum64(payload, s.run.start_block),
            parity,
        };
        // The commit point: one more page program for the journal
        // record. A cut here drops the run (payload durable but
        // unreferenced) — never the reverse.
        if let Err(e) = self.faults.program_page() {
            return Err(fault_to_edc(e));
        }
        self.journal.append(&entry);
        // Mapping update; release superseded runs and drop their
        // cached decompressions — a later read must never see them.
        for old in self.map.insert_run(entry) {
            self.release_superseded(&old);
        }
        Ok((
            WriteResult {
                start_block: s.run.start_block,
                blocks: s.run.blocks,
                tag,
                payload_bytes: payload.len() as u64,
                allocated_bytes: placement.allocated_bytes,
            },
            entry,
        ))
    }

    /// Everything that must happen when a mapping insertion supersedes an
    /// old entry's block: drop the block's slot reference (the slot frees
    /// at zero), mirror the release into the dedup refcount ledger (a
    /// no-op for untracked runs), and invalidate any cached decompression
    /// of the superseded run — a later read must never see it.
    fn release_superseded(&mut self, old: &MappingEntry) {
        self.slots.release_block_ref(old.device_offset);
        self.dedup.release_block(old.device_offset, old.run_start);
        if let Some(stale) = self.cache.invalidate(old.device_offset) {
            self.recycle_read_buf(stale);
        }
    }

    /// Split every sealed run at its content-defined cut points (block
    /// granular, FastCDC-style gear hash) so identical content sequences
    /// become identical storable units regardless of logical position.
    /// Runs at or below the chunker's minimum pass through unsplit; every
    /// sub-chunk inherits its parent's sealed codec decision, keeping the
    /// ladder's intensity semantics intact.
    fn chunk_sealed(&mut self) {
        let sealed = std::mem::take(&mut self.sealed);
        let bb = BLOCK_BYTES as usize;
        for s in sealed {
            let cuts = chunk_blocks(&self.gear, &self.config.dedup, &s.bytes);
            if cuts.len() <= 1 {
                self.sealed.push(s);
                continue;
            }
            let mut at = 0u32;
            for len in cuts {
                let lo = at as usize * bb;
                let hi = lo + len as usize * bb;
                self.sealed.push(SealedRun {
                    run: MergedRun {
                        start_block: s.run.start_block + u64::from(at),
                        blocks: len,
                        arrivals_ns: Vec::new(),
                    },
                    bytes: s.bytes[lo..hi].to_vec(),
                    codec: s.codec,
                });
                at += len;
            }
        }
    }

    /// Byte-compare a candidate chunk against the stored run `template`
    /// describes: checksum first (a rotted payload must never be adopted
    /// as a dedup target), then the raw bytes — decoded into `scratch`
    /// for compressed runs, straight out of the image for write-through
    /// ones. Draws nothing from the fault stream: a dedup probe is a
    /// pure lookup, not a modelled device access.
    fn chunk_matches_stored(
        &self,
        template: &MappingEntry,
        raw: &[u8],
        scratch: &mut Vec<u8>,
    ) -> bool {
        let off = template.device_offset as usize;
        let payload = &self.device[off..off + template.compressed_bytes as usize];
        if checksum64(payload, template.run_start) != template.checksum {
            return false;
        }
        if template.tag == CodecId::None {
            return payload == raw;
        }
        self.decode_payload(template, scratch).is_ok() && scratch[..] == raw[..]
    }

    /// Rebuild the store's volatile state from the durable journal after
    /// a (simulated) crash: restore power, reset the mapping table, slot
    /// store, caches and buffers, replay every valid journal record in
    /// append order, then audit each surviving run's payload against its
    /// checksum. Runs whose commit record landed before the cut come back
    /// with zero data loss; the run being stored at the instant of the
    /// cut is dropped (its blocks read as before that write, or zero).
    ///
    /// Also valid on a healthy store: recovery then rebuilds exactly the
    /// state it already had.
    pub fn recover(&mut self) -> Result<RecoveryReport, RecoveryError> {
        self.faults.power_cycle();
        let capacity = self.device.len() as u64;
        self.map = BlockMap::new();
        self.slots = SlotStore::new(capacity);
        self.cache = RunCache::new(self.config.cache_runs);
        self.sd = SequentialityDetector::new(self.config.sd);
        self.pending.clear();
        self.sealed.clear();
        // Temperature is ephemeral statistics, not durable metadata: the
        // recovered store re-learns heat (and re-cools demoted extents)
        // before the background pass touches anything.
        self.heat.reset();
        // The refcount ledger is rebuilt from the journal: `Put` records
        // enter with one referrer (so a legacy journal replays with every
        // refcount = 1, exactly the pre-dedup state), `Ref` records add
        // sharers and re-teach content hashes.
        self.dedup.reset();
        let replay = self.journal.replay();
        // A cleanly-decoded record carrying another shard's id means the
        // journal stream was mis-routed — adopting its mappings would
        // serve another shard's data at this shard's offsets.
        if let Some(seq) = replay.wrong_shard {
            return Err(RecoveryError { seq, reason: "record belongs to another shard" });
        }
        // Replay re-runs each committed insertion, tracking which runs
        // are still live (not fully superseded by a later record).
        let mut live: HashMap<u64, MappingEntry> = HashMap::new();
        for (seq, record) in replay.records.iter().enumerate() {
            let seq = seq as u64;
            match record {
                JournalRecord::Put(entry) => {
                    if entry.run_blocks == 0 {
                        return Err(RecoveryError { seq, reason: "zero-length run" });
                    }
                    if entry.parity && entry.stored_bytes <= BLOCK_BYTES {
                        return Err(RecoveryError {
                            seq,
                            reason: "parity run too small for its parity page",
                        });
                    }
                    let payload_slot =
                        entry.stored_bytes - if entry.parity { BLOCK_BYTES } else { 0 };
                    if entry.compressed_bytes > payload_slot {
                        return Err(RecoveryError { seq, reason: "payload exceeds its slot" });
                    }
                    if entry.stored_bytes == 0 || entry.device_offset + entry.stored_bytes > capacity
                    {
                        return Err(RecoveryError { seq, reason: "slot beyond device" });
                    }
                    self.slots.adopt_run(entry.device_offset, entry.stored_bytes, entry.run_blocks);
                    live.insert(entry.device_offset, *entry);
                    self.dedup.insert_unique(None, *entry);
                    for old in self.map.insert_run(*entry) {
                        self.dedup.release_block(old.device_offset, old.run_start);
                        if self.slots.release_block_ref(old.device_offset).is_some() {
                            live.remove(&old.device_offset);
                        }
                    }
                }
                JournalRecord::Ref(r) => {
                    // A sharer's commit record: the target must still be
                    // live at this point of the replay (the foreground
                    // path only ever references live runs, so anything
                    // else is journal corruption).
                    let Some(template) = live.get(&r.device_offset).copied() else {
                        return Err(RecoveryError {
                            seq,
                            reason: "dedup ref to a dead or unknown run",
                        });
                    };
                    if template.run_blocks != r.run_blocks {
                        return Err(RecoveryError { seq, reason: "dedup ref length mismatch" });
                    }
                    let sharer = MappingEntry {
                        run_start: r.run_start,
                        run_blocks: r.run_blocks,
                        checksum: r.checksum,
                        ..template
                    };
                    self.slots.add_run_refs(r.device_offset, r.run_blocks);
                    self.dedup.add_referrer(r.device_offset, r.run_start, r.run_blocks);
                    if r.content_hash != 0 {
                        self.dedup.learn_hash(r.device_offset, r.content_hash);
                    }
                    for old in self.map.insert_run(sharer) {
                        self.dedup.release_block(old.device_offset, old.run_start);
                        if self.slots.release_block_ref(old.device_offset).is_some() {
                            live.remove(&old.device_offset);
                        }
                    }
                }
            }
        }
        let mut report = RecoveryReport {
            scanned_records: replay.scanned,
            torn_tail: replay.torn_tail,
            ..RecoveryReport::default()
        };
        // Audit: a journaled run's payload must still hash to its record's
        // checksum. Payload-then-commit ordering guarantees it at crash
        // time; rot or image damage after the crash can still break it,
        // and such runs are dropped rather than served corrupt. A shared
        // run drops with EVERY referrer — a dedup sharer pointing at a
        // rotted payload must not survive either.
        let mut survivors: Vec<MappingEntry> = live.into_values().collect();
        survivors.sort_by_key(|e| e.device_offset);
        for entry in survivors {
            if self.verify_checksum(&entry).is_ok() {
                report.replayed_runs += 1;
            } else {
                report.payload_mismatches += 1;
                let referrers = self
                    .dedup
                    .referrers(entry.device_offset)
                    .unwrap_or_else(|| vec![(entry.run_start, entry.run_blocks)]);
                for (r_start, _) in referrers {
                    for b in r_start..r_start + u64::from(entry.run_blocks) {
                        if self.map.get(b).is_some_and(|e| e.device_offset == entry.device_offset)
                        {
                            self.map.remove(b);
                            self.slots.release_block_ref(entry.device_offset);
                        }
                    }
                }
                self.dedup.purge(entry.device_offset);
            }
        }
        Ok(report)
    }

    /// Background integrity scrub: walk every live run, verify its
    /// checksum *and* a full decode (compressed runs) plus its parity page
    /// (parity runs), and heal what verification fails.
    ///
    /// * Payload damage that parity can reconstruct is repaired and the
    ///   run rewritten **out-of-place** — fresh slot, payload and parity
    ///   pages programmed against the power-cut clock, then a journal
    ///   commit record, exactly like a foreground flush — so the repair is
    ///   durable and the suspect slot is retired. The superseded slot's
    ///   cached decompression is invalidated with it.
    /// * A stale parity page over a healthy payload is recomputed in its
    ///   slot (the payload itself never moved).
    /// * Damage parity cannot reconstruct is counted
    ///   [`ScrubReport::unrecoverable`] and left in place for a degraded
    ///   read policy to salvage.
    ///
    /// The walk draws from the fault plan like any device access, so a
    /// rot-injection campaign rots runs *as the scrubber fetches them* —
    /// the scrub-campaign benchmark measures exactly this. A power cut
    /// mid-rewrite surfaces as a typed error; payload-then-commit ordering
    /// keeps the old (already in-place-repaired) run recoverable, so the
    /// cut loses nothing.
    pub fn scrub(&mut self) -> Result<ScrubReport, EdcError> {
        self.check_powered()?;
        let mut report = ScrubReport::default();
        for entry in self.map.live_runs() {
            report.scanned += 1;
            if self.fault_device_access(&entry).is_err() {
                // Transient read faults exhausted the retry budget: the
                // run cannot even be fetched to audit this pass.
                report.unrecoverable += 1;
                continue;
            }
            let healthy = self.run_is_healthy(&entry);
            if healthy {
                if self.parity_page_fresh(&entry) {
                    report.clean += 1;
                } else {
                    self.refresh_parity_page(&entry);
                    report.repaired += 1;
                }
                continue;
            }
            if self.try_parity_repair(&entry) {
                // Reconstructed in place; now retire the suspect slot —
                // unless a referrer (dedup sharing) is partially
                // superseded, in which case relocation is unsafe and the
                // in-place repair alone has to carry the run.
                if let Some(referrers) = self.relocation_referrers(&entry) {
                    self.rewrite_run(&entry, &referrers)?;
                }
                report.repaired += 1;
            } else {
                report.unrecoverable += 1;
            }
        }
        Ok(report)
    }

    /// Scrub's audit of one run: checksum, plus a full decode for
    /// compressed runs (a checksum can't catch a payload that was stored
    /// corrupt — decode proves the bytes still expand).
    fn run_is_healthy(&mut self, entry: &MappingEntry) -> bool {
        if self.verify_checksum(entry).is_err() {
            return false;
        }
        if entry.tag == CodecId::None {
            return true;
        }
        let mut buf = self.read_buf_pool.pop().unwrap_or_default();
        let ok = self.decode_payload(entry, &mut buf).is_ok();
        self.recycle_read_buf(buf);
        ok
    }

    /// Whether a run's stored parity page still equals the XOR of its
    /// payload pages (vacuously true for runs without parity).
    fn parity_page_fresh(&self, entry: &MappingEntry) -> bool {
        if !entry.parity || entry.stored_bytes <= BLOCK_BYTES {
            return true;
        }
        let bb = BLOCK_BYTES as usize;
        let off = entry.device_offset as usize;
        let want = xor_parity(&self.device[off..off + entry.compressed_bytes as usize]);
        let at = off + entry.stored_bytes as usize - bb;
        self.device[at..at + bb] == want[..]
    }

    /// Recompute a run's parity page from its (healthy) payload, in its
    /// slot. Like [`EdcPipeline::try_parity_repair`]'s payload patch this
    /// restores the journaled state rather than creating new state, so no
    /// journal record is needed.
    fn refresh_parity_page(&mut self, entry: &MappingEntry) {
        let bb = BLOCK_BYTES as usize;
        let off = entry.device_offset as usize;
        let page = xor_parity(&self.device[off..off + entry.compressed_bytes as usize]);
        let at = off + entry.stored_bytes as usize - bb;
        self.device[at..at + bb].copy_from_slice(&page);
    }

    /// Move a (just-repaired) run out-of-place: fresh slot, payload and
    /// parity pages programmed against the power-cut clock, journal commit
    /// record, mapping update — then every dedup sharer re-pointed at the
    /// new slot through its own journaled `Ref` record. The superseded
    /// slot is released and its cached decompression invalidated — a
    /// later allocation reusing that offset must never hit stale cache.
    ///
    /// `referrers` must come from [`EdcPipeline::relocation_referrers`]
    /// (every referrer fully live), or stale blocks would resurrect.
    fn rewrite_run(
        &mut self,
        old: &MappingEntry,
        referrers: &[(u64, u32)],
    ) -> Result<(), EdcError> {
        let bb = BLOCK_BYTES as usize;
        let off = old.device_offset as usize;
        let payload: Vec<u8> = self.device[off..off + old.compressed_bytes as usize].to_vec();
        let device_offset = self.slots.alloc_run(old.stored_bytes, old.run_blocks);
        let noff = device_offset as usize;
        for page in 0..payload.len().div_ceil(bb).max(1) {
            if let Err(e) = self.faults.program_page() {
                return Err(fault_to_edc(e));
            }
            let lo = page * bb;
            let hi = (lo + bb).min(payload.len());
            self.device[noff + lo..noff + hi].copy_from_slice(&payload[lo..hi]);
        }
        if old.parity {
            if let Err(e) = self.faults.program_page() {
                return Err(fault_to_edc(e));
            }
            let page = xor_parity(&payload);
            let at = noff + old.stored_bytes as usize - bb;
            self.device[at..at + bb].copy_from_slice(&page);
        }
        self.physical_written += old.stored_bytes;
        let entry = MappingEntry { device_offset, ..*old };
        if let Err(e) = self.faults.program_page() {
            return Err(fault_to_edc(e));
        }
        self.journal.append(&entry);
        // Carry the ledger state (hash, referrer counts) to the new
        // offset before the mapping updates release the old one.
        self.dedup.relocate(old.device_offset, entry);
        for evicted in self.map.insert_run(entry) {
            self.release_superseded(&evicted);
        }
        self.repoint_sharers(old, &entry, &payload, referrers)
    }

    /// Re-point every dedup sharer of a just-relocated run at its new
    /// slot, exactly like a foreground dedup hit: slot references first,
    /// then the journaled `Ref` commit record, then the mapping update.
    /// The sharers' superseded entries release the old slot's remaining
    /// references, freeing it once the last one moves.
    fn repoint_sharers(
        &mut self,
        old: &MappingEntry,
        entry: &MappingEntry,
        payload: &[u8],
        referrers: &[(u64, u32)],
    ) -> Result<(), EdcError> {
        let hash = self.dedup.content_hash(entry.device_offset).unwrap_or(0);
        for &(r_start, _) in referrers {
            if r_start == old.run_start {
                continue;
            }
            let sharer = MappingEntry {
                run_start: r_start,
                checksum: checksum64(payload, r_start),
                ..*entry
            };
            self.slots.add_run_refs(entry.device_offset, entry.run_blocks);
            if let Err(e) = self.faults.program_page() {
                return Err(fault_to_edc(e));
            }
            self.journal.append_ref(&sharer, hash);
            for evicted in self.map.insert_run(sharer) {
                self.release_superseded(&evicted);
            }
        }
        Ok(())
    }

    /// The referrers of a relocation candidate, as `(run_start, blocks)`
    /// pairs with the mapping's representative first — or `None` when any
    /// referrer (the representative included) is partially superseded:
    /// re-inserting the full run range would then resurrect stale blocks,
    /// so the caller must leave the run in place. Untracked runs (dedup
    /// off, or adopted from a legacy journal) audit their single implicit
    /// referrer the same way.
    fn relocation_referrers(&self, entry: &MappingEntry) -> Option<Vec<(u64, u32)>> {
        let mut referrers = self
            .dedup
            .referrers(entry.device_offset)
            .unwrap_or_else(|| vec![(entry.run_start, entry.run_blocks)]);
        referrers.sort_unstable_by_key(|&(s, _)| (s != entry.run_start, s));
        for &(r_start, _) in &referrers {
            for b in r_start..r_start + u64::from(entry.run_blocks) {
                let live = self.map.get(b).is_some_and(|e| {
                    e.device_offset == entry.device_offset && e.run_start == r_start
                });
                if !live {
                    return None;
                }
            }
        }
        Some(referrers)
    }

    /// Heat-aware background recompression (the GC-cooperation policy,
    /// DESIGN.md §12): walk up to the whole live-run set, classify each
    /// run by its decayed extent heat at `now_ns`, and
    ///
    /// * **cold** runs whose codec tag is strictly weaker than `target`
    ///   are re-compressed with `target` (the ladder's strongest codec —
    ///   [`SelectorConfig::strongest_codec`]) using the pooled
    ///   [`CompressorState`], but only when the new quantized slot is
    ///   strictly smaller than the old one;
    /// * **hot** runs whose achieved ratio is at or below
    ///   [`HeatConfig::demote_ratio`] are demoted to write-through, so
    ///   their reads skip decompression entirely; the covered extents are
    ///   flagged and excluded from future recompression until a crash
    ///   resets the (volatile) flag;
    /// * `FileTypeHint::Precompressed` runs are never touched.
    ///
    /// Every rewrite is durable and crash-consistent: fresh slot, payload
    /// (+ parity) pages programmed against the power-cut clock *before*
    /// the journal commit record, mapping updated, superseded slot
    /// released and its cached decompression dropped — exactly the
    /// foreground flush discipline, so a power cut mid-pass loses no
    /// journaled run (the old record still wins on replay). A cut
    /// surfaces as the usual typed error; call [`EdcPipeline::recover`].
    ///
    /// `max_rewrites` bounds the rewrites (not the scan) per pass — the
    /// caller's idle-bandwidth budget; a GC slice passes a small number,
    /// a dedicated background sweep can pass `usize::MAX`. After a cold
    /// run moves, its decompressed bytes are re-inserted into the read
    /// cache under the new offset (the pass just held them anyway), so
    /// the first post-relocation read pays no decompression.
    pub fn recompress_pass(
        &mut self,
        now_ns: u64,
        target: CodecId,
        max_rewrites: usize,
    ) -> Result<RecompressReport, EdcError> {
        self.check_powered()?;
        let mut report = RecompressReport::default();
        if !self.config.heat.enabled || max_rewrites == 0 || target == CodecId::None {
            return Ok(report);
        }
        let codec = CodecRegistry::get(target)?;
        if self.codec_states.is_empty() {
            self.codec_states.push(CompressorState::new());
        }
        let mut rewrites = 0usize;
        for entry in self.map.live_runs() {
            if rewrites >= max_rewrites {
                break;
            }
            // A dedup sharer enumerates once per referrer; relocating the
            // run under one referrer re-points them all, leaving the
            // siblings' snapshot entries stale. Those were already
            // handled this pass — don't re-count (or re-touch) them.
            let stale = self
                .map
                .get(entry.run_start)
                .is_none_or(|e| e.device_offset != entry.device_offset);
            if stale {
                continue;
            }
            report.scanned += 1;
            let blocks = u64::from(entry.run_blocks);
            if self.hints.lookup(entry.run_start).is_some_and(FileTypeHint::settles_compressibility)
            {
                report.skipped_precompressed += 1;
                continue;
            }
            if self.heat.run_demoted(entry.run_start, blocks) {
                report.skipped_demoted += 1;
                continue;
            }
            match self.heat.classify_run(now_ns, entry.run_start, blocks) {
                Temperature::Hot => {
                    let raw_len = blocks * BLOCK_BYTES;
                    let achieved = raw_len as f64 / entry.compressed_bytes.max(1) as f64;
                    if entry.tag == CodecId::None || achieved > self.config.heat.demote_ratio {
                        continue; // hot and worth its compression: leave it
                    }
                    let Some(referrers) = self.relocation_referrers(&entry) else {
                        report.skipped_shared += 1;
                        continue;
                    };
                    let mut raw = self.read_buf_pool.pop().unwrap_or_default();
                    if self.decompress_run_into(&entry, &mut raw).is_err() {
                        self.recycle_read_buf(raw);
                        report.skipped_unreadable += 1;
                        continue;
                    }
                    let stored =
                        raw_len + if self.config.parity { BLOCK_BYTES } else { 0 };
                    let res = self.replace_run(&entry, CodecId::None, &raw, stored, &referrers);
                    self.recycle_read_buf(raw);
                    res?;
                    self.heat.mark_demoted(entry.run_start, blocks);
                    self.demoted_runs += 1;
                    report.demoted += 1;
                    rewrites += 1;
                }
                Temperature::Cold => {
                    if codec_strength(entry.tag) >= codec_strength(target) {
                        continue; // already at (or above) the target tier
                    }
                    let Some(referrers) = self.relocation_referrers(&entry) else {
                        report.skipped_shared += 1;
                        continue;
                    };
                    let mut raw = self.read_buf_pool.pop().unwrap_or_default();
                    if self.run_raw_bytes(&entry, &mut raw).is_err() {
                        self.recycle_read_buf(raw);
                        report.skipped_unreadable += 1;
                        continue;
                    }
                    let mut comp = self.scratch.pop().unwrap_or_default();
                    codec.compress_with(&mut self.codec_states[0], &raw, &mut comp);
                    let placement =
                        self.allocator.place(raw.len() as u64, comp.len() as u64, None);
                    let stored = placement.allocated_bytes
                        + if self.config.parity { BLOCK_BYTES } else { 0 };
                    if !placement.compressed || stored >= entry.stored_bytes {
                        report.skipped_no_gain += 1;
                        self.recycle_read_buf(raw);
                        comp.clear();
                        self.scratch.push(comp);
                        continue;
                    }
                    let res = self.replace_run(&entry, target, &comp, stored, &referrers);
                    comp.clear();
                    self.scratch.push(comp);
                    let new_entry = match res {
                        Ok(e) => e,
                        Err(e) => {
                            self.recycle_read_buf(raw);
                            return Err(e);
                        }
                    };
                    // The pass already holds the decompressed bytes:
                    // seed the cache under the new offset so the first
                    // post-relocation read skips the (stronger, slower)
                    // decompressor.
                    if self.cache.enabled() {
                        if let Some(displaced) =
                            self.cache.insert(new_entry.device_offset, raw)
                        {
                            self.recycle_read_buf(displaced);
                        }
                    } else {
                        self.recycle_read_buf(raw);
                    }
                    report.bytes_reclaimed += entry.stored_bytes - stored;
                    self.recompressed_runs += 1;
                    report.recompressed += 1;
                    rewrites += 1;
                }
                Temperature::Warm => {}
            }
        }
        Ok(report)
    }

    /// Fetch a live run's *raw* (decompressed) bytes into `out`: the
    /// payload itself for write-through runs, a decode for compressed
    /// ones. Draws device-access faults like any read; used by the
    /// background recompression pass.
    fn run_raw_bytes(&mut self, entry: &MappingEntry, out: &mut Vec<u8>) -> Result<(), ReadError> {
        if entry.tag != CodecId::None {
            return self.decompress_run_into(entry, out);
        }
        self.fault_device_access(entry)?;
        if self.verify_checksum(entry).is_err() && !self.try_parity_repair(entry) {
            return Err(ReadError::ChecksumMismatch { run_start: entry.run_start });
        }
        out.clear();
        let off = entry.device_offset as usize;
        out.extend_from_slice(&self.device[off..off + entry.compressed_bytes as usize]);
        Ok(())
    }

    /// Rewrite a live run out-of-place with a **new** payload and codec
    /// tag (recompression / demotion), under the same crash discipline as
    /// [`EdcPipeline::rewrite_run`]: fresh slot, payload (+ parity) pages
    /// programmed against the power-cut clock, journal commit record,
    /// mapping update, superseded slot released and its cached
    /// decompression dropped, every dedup sharer re-pointed through its
    /// own journaled `Ref` record (the content hash carries over — it is
    /// a hash of the *raw* bytes, which recompression does not change).
    /// `referrers` must come from [`EdcPipeline::relocation_referrers`].
    /// Returns the new mapping entry.
    fn replace_run(
        &mut self,
        old: &MappingEntry,
        tag: CodecId,
        payload: &[u8],
        stored_bytes: u64,
        referrers: &[(u64, u32)],
    ) -> Result<MappingEntry, EdcError> {
        let bb = BLOCK_BYTES as usize;
        let parity = self.config.parity;
        let device_offset = self.slots.alloc_run(stored_bytes, old.run_blocks);
        let noff = device_offset as usize;
        for page in 0..payload.len().div_ceil(bb).max(1) {
            if let Err(e) = self.faults.program_page() {
                return Err(fault_to_edc(e));
            }
            let lo = page * bb;
            let hi = (lo + bb).min(payload.len());
            self.device[noff + lo..noff + hi].copy_from_slice(&payload[lo..hi]);
        }
        if parity {
            if let Err(e) = self.faults.program_page() {
                return Err(fault_to_edc(e));
            }
            let page = xor_parity(payload);
            let at = noff + stored_bytes as usize - bb;
            self.device[at..at + bb].copy_from_slice(&page);
        }
        self.device_dwell();
        self.physical_written += stored_bytes;
        let entry = MappingEntry {
            tag,
            run_start: old.run_start,
            run_blocks: old.run_blocks,
            device_offset,
            stored_bytes,
            compressed_bytes: payload.len() as u64,
            checksum: checksum64(payload, old.run_start),
            parity,
        };
        // Commit point: the new record supersedes the old one for this
        // run on replay; a cut before it leaves the old run live.
        if let Err(e) = self.faults.program_page() {
            return Err(fault_to_edc(e));
        }
        self.journal.append(&entry);
        // Carry the ledger state to the new offset, then re-point every
        // sharer; their superseded entries drain the old slot's refs.
        self.dedup.relocate(old.device_offset, entry);
        for evicted in self.map.insert_run(entry) {
            self.release_superseded(&evicted);
        }
        self.repoint_sharers(old, &entry, payload, referrers)?;
        Ok(entry)
    }

    /// The heat tracker (read-only view for tests and benchmarks).
    pub fn heat(&self) -> &HeatTracker {
        &self.heat
    }

    /// Replace the fault plan, restarting the decision stream (campaigns
    /// arm faults *after* preconditioning this way).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.config.fault = plan;
        self.faults = FaultState::new(plan);
    }

    /// Injected-fault counters so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.stats()
    }

    /// Cumulative page programs — the power-cut clock position. A
    /// campaign learns a workload's program count from a clean run, then
    /// sweeps `power_cut_after_programs` across `0..stats().programs`.
    #[deprecated(since = "0.7.0", note = "use `stats().programs`")]
    pub fn programs(&self) -> u64 {
        self.faults.programs()
    }

    /// Whether the (simulated) store currently has power.
    pub fn powered(&self) -> bool {
        self.faults.powered()
    }

    /// Cut power immediately, regardless of any armed program budget —
    /// the deterministic "yank the cord now" behind
    /// [`crate::store::Op::PowerCut`]. Every subsequent entry point
    /// errors until [`EdcPipeline::recover`] runs.
    pub fn cut_power(&mut self) {
        self.faults.cut_power();
    }

    /// Reads served raw despite a checksum mismatch (only possible with
    /// [`FaultPlan::allow_degraded_reads`]).
    #[deprecated(since = "0.7.0", note = "use `stats().degraded_reads`")]
    pub fn degraded_reads(&self) -> u64 {
        self.degraded_reads
    }

    /// Committed runs journaled so far.
    #[deprecated(since = "0.7.0", note = "use `stats().journal_records`")]
    pub fn journal_records(&self) -> u64 {
        self.journal.records()
    }

    /// Journal size in bytes.
    #[deprecated(since = "0.7.0", note = "use `stats().journal_bytes`")]
    pub fn journal_bytes(&self) -> usize {
        self.journal.len_bytes()
    }

    /// Test hook: tear the journal to its first `bytes` bytes, simulating
    /// a cut mid-way through a journal page program.
    pub fn truncate_journal_bytes(&mut self, bytes: usize) {
        self.journal.truncate_bytes(bytes);
    }

    /// Cumulative logical bytes accepted.
    #[deprecated(since = "0.7.0", note = "use `stats().logical_written`")]
    pub fn logical_written(&self) -> u64 {
        self.logical_written
    }

    /// Cumulative flash bytes allocated.
    #[deprecated(since = "0.7.0", note = "use `stats().physical_written`")]
    pub fn physical_written(&self) -> u64 {
        self.physical_written
    }

    /// Current live on-flash footprint: the stored bytes (allocated quanta
    /// plus any parity page) of every live run. Unlike the cumulative
    /// [`EdcPipeline::physical_written`], this shrinks when background
    /// recompression or overwrites release space — it is the number the
    /// heat bench's space gate compares.
    pub fn live_stored_bytes(&self) -> u64 {
        self.map.live_runs().iter().map(|e| e.stored_bytes).sum()
    }

    /// The paper's compression ratio over everything written so far.
    #[deprecated(since = "0.7.0", note = "use `stats().compression_ratio()`")]
    pub fn compression_ratio(&self) -> f64 {
        if self.physical_written == 0 {
            return 1.0;
        }
        self.logical_written as f64 / self.physical_written as f64
    }

    /// Allocator statistics.
    pub fn alloc_stats(&self) -> AllocStats {
        self.allocator.stats()
    }

    /// Decompressed-run read-cache statistics (all zeroes when disabled).
    #[deprecated(since = "0.7.0", note = "use `stats().cache`")]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// One consistent snapshot of every counter (the mapping figures come
    /// from a single all-shards-locked [`BlockMap::snapshot`]).
    pub fn stats(&self) -> PipelineStats {
        let snap = self.map.snapshot();
        PipelineStats {
            logical_written: self.logical_written,
            physical_written: self.physical_written,
            mapped_blocks: snap.blocks as u64,
            live_runs: snap.runs.len() as u64,
            journal_records: self.journal.records(),
            journal_bytes: self.journal.len_bytes() as u64,
            degraded_reads: self.degraded_reads,
            programs: self.faults.programs(),
            recompressed_runs: self.recompressed_runs,
            demoted_runs: self.demoted_runs,
            cache: self.cache.stats(),
            dedup_hits: self.dedup_hits,
            dedup_elided_bytes: self.dedup_elided_bytes,
        }
    }

    /// Read-only integrity audit: walk every live run and check its
    /// checksum, a full decode (compressed runs) and parity-page freshness
    /// — the non-healing counterpart of [`EdcPipeline::scrub`]. Nothing is
    /// repaired or rewritten and no fault-plan decisions are drawn, so a
    /// verify pass never perturbs a campaign. Failing runs are counted
    /// [`ScrubReport::unrecoverable`]; `repaired` is always zero.
    pub fn verify(&self) -> Result<ScrubReport, EdcError> {
        self.check_powered()?;
        let mut report = ScrubReport::default();
        let mut buf = Vec::new();
        for entry in self.map.live_runs() {
            report.scanned += 1;
            let healthy = self.verify_checksum(&entry).is_ok()
                && (entry.tag == CodecId::None
                    || self.decode_payload(&entry, &mut buf).is_ok())
                && self.parity_page_fresh(&entry);
            if healthy {
                report.clean += 1;
            } else {
                report.unrecoverable += 1;
            }
        }
        Ok(report)
    }

    /// Cross-check the dedup refcount ledger against the mapping table
    /// both ways — the §14 analogue of the slot store's
    /// bucket cross-check in [`EdcPipeline::verify`]:
    ///
    /// * every ledger referrer must be present in the mapping with
    ///   exactly its recorded live block count, per tracked offset the
    ///   mapping must hold exactly the ledger's referrers, and the slot
    ///   store's outstanding block references must equal the ledger's
    ///   total live blocks;
    /// * conversely no mapped offset may carry sharing the ledger does
    ///   not know about, and with dedup enabled every live run must be
    ///   tracked.
    ///
    /// Read-only and fault-free; returns aggregate counters on success
    /// and a typed [`EdcError::Integrity`] on the first inconsistency.
    pub fn verify_dedup(&self) -> Result<DedupReport, EdcError> {
        self.check_powered()?;
        // Mapping side: live block counts grouped offset → referrers.
        let mut map_side: HashMap<u64, Vec<(u64, u32)>> = HashMap::new();
        for (entry, blocks) in self.map.referrer_counts() {
            map_side.entry(entry.device_offset).or_default().push((entry.run_start, blocks));
        }
        let mut report = DedupReport::default();
        for referrers in map_side.values() {
            report.runs += 1;
            if referrers.len() > 1 {
                report.shared_runs += 1;
                report.extra_refs += referrers.len() as u64 - 1;
            }
        }
        if !self.config.dedup.enabled && self.dedup.is_empty() {
            // A store with no ledger at all must also have no sharing.
            if report.shared_runs > 0 {
                return Err(EdcError::Integrity("shared run on a store with no dedup ledger"));
            }
            return Ok(report);
        }
        // Ledger → mapping: every recorded referrer really holds exactly
        // its recorded blocks, and the slot refcount agrees.
        for (off, referrers) in self.dedup.ledger() {
            let map_refs = map_side.get(&off).map_or(&[][..], Vec::as_slice);
            if map_refs.len() != referrers.len() {
                return Err(EdcError::Integrity("ledger and mapping disagree on referrer count"));
            }
            let mut total = 0u32;
            for &(r_start, blocks) in &referrers {
                total += blocks;
                if !map_refs.iter().any(|&(s, n)| s == r_start && n == blocks) {
                    return Err(EdcError::Integrity("ledger referrer missing from the mapping"));
                }
            }
            if self.slots.block_refs(off) != total {
                return Err(EdcError::Integrity("slot refcount disagrees with the ledger"));
            }
        }
        // Mapping → ledger: sharing outside the ledger is always an
        // inconsistency; an untracked unique run is legal only while
        // dedup is disabled (stored before the ledger existed).
        for (off, referrers) in &map_side {
            if self.dedup.tracked(*off) {
                continue;
            }
            if referrers.len() > 1 {
                return Err(EdcError::Integrity("shared run missing from the dedup ledger"));
            }
            if self.config.dedup.enabled {
                return Err(EdcError::Integrity("live run missing from the dedup ledger"));
            }
        }
        Ok(report)
    }

    /// Total codec-scratch growth events across the pooled per-worker
    /// [`CompressorState`]s. After a warm-up drain this stays constant:
    /// steady-state compression performs no codec-side allocation.
    pub fn codec_state_alloc_events(&self) -> u64 {
        self.codec_states.iter().map(CompressorState::alloc_events).sum()
    }

    /// The raw device image. Two pipelines fed the same writes must hold
    /// identical images regardless of worker count — benchmarks and tests
    /// assert the batched path against the serial one with this.
    pub fn device_image(&self) -> &[u8] {
        &self.device
    }

    /// The active configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }
}

impl crate::store::Store for EdcPipeline {
    fn write_batch(&mut self, writes: &[BatchWrite<'_>]) -> Result<Vec<WriteResult>, EdcError> {
        EdcPipeline::write_batch(self, writes)
    }

    fn read(&mut self, now_ns: u64, offset: u64, len: u64) -> Result<Vec<u8>, ReadError> {
        EdcPipeline::read(self, now_ns, offset, len)
    }

    fn flush_all(&mut self, now_ns: u64) -> Result<Vec<WriteResult>, EdcError> {
        EdcPipeline::flush_all(self, now_ns)
    }

    fn recover(&mut self) -> Result<RecoveryReport, RecoveryError> {
        EdcPipeline::recover(self)
    }

    fn scrub(&mut self) -> Result<ScrubReport, EdcError> {
        EdcPipeline::scrub(self)
    }

    fn verify_store(&mut self) -> Result<ScrubReport, EdcError> {
        EdcPipeline::verify(self)
    }

    fn verify_dedup(&mut self) -> Result<DedupReport, EdcError> {
        EdcPipeline::verify_dedup(self)
    }

    fn recompress(
        &mut self,
        now_ns: u64,
        target: CodecId,
        max_rewrites: usize,
    ) -> Result<RecompressReport, EdcError> {
        self.recompress_pass(now_ns, target, max_rewrites)
    }

    fn set_hint(&mut self, offset: u64, len: u64, hint: FileTypeHint) {
        EdcPipeline::set_hint(self, offset, len, hint)
    }

    fn set_fault_plan(&mut self, plan: FaultPlan) {
        EdcPipeline::set_fault_plan(self, plan)
    }

    fn fault_stats(&mut self) -> FaultStats {
        EdcPipeline::fault_stats(self)
    }

    fn truncate_journal_bytes(&mut self, shard: usize, bytes: usize) {
        assert_eq!(shard, 0, "a plain pipeline has only shard 0");
        EdcPipeline::truncate_journal_bytes(self, bytes)
    }

    fn cut_power(&mut self) {
        EdcPipeline::cut_power(self)
    }

    fn powered(&mut self) -> bool {
        EdcPipeline::powered(self)
    }

    fn stats(&mut self) -> PipelineStats {
        EdcPipeline::stats(self)
    }

    fn shard_count(&self) -> usize {
        1
    }

    fn live_stored_bytes(&mut self) -> u64 {
        EdcPipeline::live_stored_bytes(self)
    }
}

/// XOR of a payload's zero-padded 4 KiB pages: the run's parity page.
/// Any single payload page equals this XORed with all the other pages.
fn xor_parity(payload: &[u8]) -> Vec<u8> {
    let bb = BLOCK_BYTES as usize;
    let mut page = vec![0u8; bb];
    for chunk in payload.chunks(bb) {
        for (d, s) in page.iter_mut().zip(chunk) {
            *d ^= s;
        }
    }
    page
}

/// Map a flash-level fault surfacing on the pipeline's write path into
/// the unified error: power loss and powered-off get their write-path
/// types, anything else passes through as a raw fault.
fn fault_to_edc(e: FaultError) -> EdcError {
    match e {
        FaultError::PowerCut { after_programs } => WriteError::PowerCut { after_programs }.into(),
        FaultError::PoweredOff => WriteError::Offline.into(),
        other => EdcError::Fault(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn text_block(tag: u8) -> Vec<u8> {
        format!("block {tag} elastic compression pipeline content ")
            .into_bytes()
            .into_iter()
            .cycle()
            .take(4096)
            .collect()
    }

    fn random_block(seed: u64) -> Vec<u8> {
        let mut x = seed | 1;
        (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 48) as u8
            })
            .collect()
    }

    fn pipeline() -> EdcPipeline {
        EdcPipeline::new(4 << 20, PipelineConfig::default())
    }

    #[test]
    fn write_read_round_trip() {
        let mut p = pipeline();
        let data = text_block(1);
        p.write(0, 0, &data).unwrap();
        p.flush(1_000).unwrap();
        assert_eq!(p.read(2_000, 0, 4096).unwrap(), data);
    }

    #[test]
    fn read_flushes_pending_writes() {
        let mut p = pipeline();
        let data = text_block(2);
        p.write(0, 8192, &data).unwrap();
        // No explicit flush: the read must still see the data.
        assert_eq!(p.read(1_000, 8192, 4096).unwrap(), data);
    }

    #[test]
    fn unwritten_blocks_read_zero() {
        let mut p = pipeline();
        assert_eq!(p.read(0, 0, 8192).unwrap(), vec![0u8; 8192]);
    }

    #[test]
    fn sequential_writes_merge_into_one_run() {
        let mut p = pipeline();
        let a = text_block(3);
        let b = text_block(4);
        let c = text_block(5);
        assert!(p.write(0, 0, &a).unwrap().is_none());
        assert!(p.write(10, 4096, &b).unwrap().is_none());
        assert!(p.write(20, 8192, &c).unwrap().is_none());
        let r = p.flush(30).unwrap().expect("flush merged run");
        assert_eq!(r.blocks, 3);
        assert_eq!(r.start_block, 0);
        // Round trip across the merged run.
        let all = p.read(40, 0, 3 * 4096).unwrap();
        assert_eq!(&all[..4096], &a[..]);
        assert_eq!(&all[4096..8192], &b[..]);
        assert_eq!(&all[8192..], &c[..]);
    }

    #[test]
    fn compressible_data_is_compressed_and_saves_space() {
        let mut p = pipeline();
        for i in 0..32u64 {
            p.write(i, i * 4096, &text_block(i as u8)).unwrap();
        }
        p.flush(100).unwrap();
        assert!(p.stats().compression_ratio() > 1.5, "ratio {}", p.stats().compression_ratio());
    }

    #[test]
    fn steady_state_drains_do_not_allocate_codec_scratch() {
        // Pin the ladder to Deflate — the most scratch-hungry codec — so
        // every drain exercises the pooled states regardless of intensity.
        let config = PipelineConfig {
            selector: SelectorConfig {
                rungs: vec![crate::selector::LadderRung {
                    max_calc_iops: f64::INFINITY,
                    codec: CodecId::Deflate,
                }],
            },
            workers: 2,
            ..PipelineConfig::default()
        };
        let mut p = EdcPipeline::new(32 << 20, config);
        let mut now = 0u64;
        let round = |p: &mut EdcPipeline, now: &mut u64| {
            for i in 0..8u64 {
                // Non-adjacent offsets: each write seals its own run.
                p.write(*now, i * 3 * 4096, &text_block(i as u8)).unwrap();
                *now += 1_000_000;
            }
            p.flush_all(*now).unwrap();
            *now += 1_000_000;
        };
        // Warm-up drains grow the pooled scratch once.
        round(&mut p, &mut now);
        round(&mut p, &mut now);
        let warmed = p.codec_state_alloc_events();
        for _ in 0..4 {
            round(&mut p, &mut now);
        }
        assert_eq!(
            p.codec_state_alloc_events(),
            warmed,
            "steady-state drain grew codec scratch"
        );
    }

    #[test]
    fn incompressible_data_written_through() {
        let mut p = pipeline();
        let r = {
            p.write(0, 0, &random_block(42)).unwrap();
            p.flush(1).unwrap().unwrap()
        };
        assert_eq!(r.tag, CodecId::None);
        assert_eq!(r.allocated_bytes, 4096);
        assert_eq!(p.read(2, 0, 4096).unwrap(), random_block(42));
    }

    #[test]
    fn high_intensity_skips_compression() {
        let mut p = pipeline();
        // 20k writes/s sustained: the 1 s monitor window exceeds the
        // 4 000 calc-IOPS skip threshold within 200 ms.
        let mut last = None;
        for i in 0..6000u64 {
            let off = (i % 400) * 3 * 4096; // non-contiguous: flush each time
            last = p.write(i * 50_000, off, &text_block(9)).unwrap().or(last);
        }
        let r = last.expect("flushes happened");
        assert_eq!(r.tag, CodecId::None, "burst writes must skip compression");
    }

    #[test]
    fn idle_writes_use_strong_codec() {
        let mut p = pipeline();
        // One write every 100 ms: ~10 calculated IOPS → Gzip band.
        let mut results = Vec::new();
        for i in 0..20u64 {
            if let Some(r) = p.write(i * 100_000_000, (i * 5) * 4096, &text_block(7)).unwrap() {
                results.push(r);
            }
        }
        if let Some(r) = p.flush(20 * 100_000_000).unwrap() { results.push(r) }
        assert!(
            results.iter().any(|r| r.tag == CodecId::Deflate),
            "idle writes should pick Gzip, got {:?}",
            results.iter().map(|r| r.tag).collect::<Vec<_>>()
        );
    }

    #[test]
    fn overwrite_returns_latest_data() {
        let mut p = pipeline();
        let v1 = text_block(1);
        let v2 = random_block(77);
        p.write(0, 4096, &v1).unwrap();
        p.flush(1).unwrap();
        p.write(2, 4096, &v2).unwrap();
        p.flush(3).unwrap();
        assert_eq!(p.read(4, 4096, 4096).unwrap(), v2);
    }

    #[test]
    fn partial_read_of_merged_run() {
        let mut p = pipeline();
        let a = text_block(11);
        let b = text_block(12);
        p.write(0, 0, &a).unwrap();
        p.write(1, 4096, &b).unwrap();
        p.flush(2).unwrap();
        // Read only the second block of the two-block run.
        assert_eq!(p.read(3, 4096, 4096).unwrap(), b);
    }

    #[test]
    fn multi_block_write_round_trip() {
        let mut p = pipeline();
        let mut big = text_block(20);
        big.extend(text_block(21));
        big.extend(random_block(5));
        big.extend(text_block(22));
        p.write(0, 16384, &big).unwrap();
        p.flush(1).unwrap();
        assert_eq!(p.read(2, 16384, big.len() as u64).unwrap(), big);
    }

    #[test]
    fn unaligned_write_rejected_as_typed_error() {
        let mut p = pipeline();
        assert!(matches!(
            p.write(0, 100, &text_block(0)),
            Err(EdcError::Write(WriteError::Unaligned))
        ));
        // The whole batch is validated up front: nothing was accepted.
        assert_eq!(p.stats().logical_written, 0);
        p.write(1, 0, &text_block(0)).unwrap();
    }

    #[test]
    fn unaligned_read_errors() {
        let mut p = pipeline();
        assert!(matches!(p.read(0, 100, 4096), Err(ReadError::Unaligned)));
        assert!(matches!(p.read(0, 0, 100), Err(ReadError::Unaligned)));
    }

    #[test]
    fn precompressed_hint_skips_compression_of_compressible_data() {
        let mut p = pipeline();
        p.set_hint(0, 8192, FileTypeHint::Precompressed);
        let data = text_block(40); // would normally compress well
        p.write(0, 0, &data).unwrap();
        let r = p.flush(1).unwrap().unwrap();
        assert_eq!(r.tag, CodecId::None, "hint must veto compression");
        assert_eq!(p.read(2, 0, 4096).unwrap(), data);
    }

    #[test]
    fn database_hint_caps_codec_at_fast_tier() {
        let mut p = pipeline();
        p.set_hint(0, 4096, FileTypeHint::Database);
        // Slow writes → ladder would pick the strong codec; the hint caps it.
        p.write(0, 0, &text_block(41)).unwrap();
        let r = p.flush(100_000_000).unwrap().unwrap();
        assert_eq!(r.tag, CodecId::Lzf, "database hint caps at Lzf, got {:?}", r.tag);
    }

    #[test]
    fn unhinted_ranges_unaffected() {
        let mut p = pipeline();
        p.set_hint(1 << 20, 4096, FileTypeHint::Precompressed);
        p.write(0, 0, &text_block(42)).unwrap();
        let r = p.flush(100_000_000).unwrap().unwrap();
        assert_ne!(r.tag, CodecId::None, "hint elsewhere must not leak");
    }

    #[test]
    fn corrupted_device_image_detected_by_checksum() {
        let mut p = pipeline();
        let data = text_block(33);
        p.write(0, 0, &data).unwrap();
        p.flush(1).unwrap();
        // Flip one byte of the stored payload behind the pipeline's back.
        p.device[0] ^= 0x01;
        match p.read(2, 0, 4096) {
            Err(ReadError::ChecksumMismatch { run_start }) => assert_eq!(run_start, 0),
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn partial_overwrite_of_merged_run_reads_fresh_data() {
        // Regression: block 1's entry must win over the older merged run
        // (blocks 0..3) that still covers its address range.
        let mut p = pipeline();
        let old: Vec<Vec<u8>> = (0..4).map(|i| text_block(50 + i)).collect();
        for (i, blockdata) in old.iter().enumerate() {
            p.write(i as u64, i as u64 * 4096, blockdata).unwrap();
        }
        p.flush(10).unwrap(); // one merged 4-block run
        let fresh = random_block(4242);
        p.write(20, 4096, &fresh).unwrap(); // overwrite only block 1
        p.flush(30).unwrap();
        // A read spanning the whole range must mix old and new correctly.
        let got = p.read(40, 0, 4 * 4096).unwrap();
        assert_eq!(&got[..4096], &old[0][..], "block 0 from the old run");
        assert_eq!(&got[4096..8192], &fresh[..], "block 1 must be the overwrite");
        assert_eq!(&got[8192..12288], &old[2][..], "block 2 from the old run");
        assert_eq!(&got[12288..], &old[3][..], "block 3 from the old run");
    }

    #[test]
    fn mapping_tags_recorded() {
        let mut p = pipeline();
        p.write(0, 0, &text_block(1)).unwrap();
        let r = p.flush(1).unwrap().unwrap();
        assert_ne!(r.tag, CodecId::None, "slow text write should compress");
        assert!(r.payload_bytes < 4096);
        assert!(r.allocated_bytes <= 4096);
    }

    #[test]
    fn write_batch_flushes_multiple_runs() {
        let mut p = pipeline();
        let blocks: Vec<Vec<u8>> = (0..8).map(|i| text_block(60 + i)).collect();
        // Non-contiguous offsets: every write after the first seals the
        // previous single-block run.
        let batch: Vec<BatchWrite<'_>> = blocks
            .iter()
            .enumerate()
            .map(|(i, data)| BatchWrite {
                now_ns: i as u64,
                offset: (i as u64 * 3) * 4096,
                data,
            })
            .collect();
        let mut results = p.write_batch(&batch).unwrap();
        results.extend(p.flush_all(100).unwrap());
        assert_eq!(results.len(), 8);
        for (i, data) in blocks.iter().enumerate() {
            assert_eq!(&p.read(200 + i as u64, (i as u64 * 3) * 4096, 4096).unwrap(), data);
        }
    }

    #[test]
    fn batched_multicore_store_is_bit_identical_to_serial() {
        let make = |workers: usize| {
            EdcPipeline::new(8 << 20, PipelineConfig { workers, ..PipelineConfig::default() })
        };
        let blocks: Vec<Vec<u8>> = (0..64)
            .map(|i| if i % 5 == 4 { random_block(i) } else { text_block(i as u8) })
            .collect();
        let batch: Vec<BatchWrite<'_>> = blocks
            .iter()
            .enumerate()
            .map(|(i, data)| BatchWrite {
                now_ns: i as u64 * 1000,
                offset: (i as u64 * 3) * 4096,
                data,
            })
            .collect();

        // Serial reference: one write at a time, one worker.
        let mut serial = make(1);
        for w in &batch {
            serial.write(w.now_ns, w.offset, w.data).unwrap();
        }
        serial.flush(1_000_000).unwrap();

        // Batched, four workers, one call.
        let mut batched = make(4);
        batched.write_batch(&batch).unwrap();
        batched.flush_all(1_000_000).unwrap();

        assert_eq!(serial.device, batched.device, "device images must be bit-identical");
        assert_eq!(serial.stats().physical_written, batched.stats().physical_written);
        assert_eq!(serial.stats().logical_written, batched.stats().logical_written);
    }

    #[test]
    fn repeated_reads_hit_run_cache() {
        let mut p = pipeline();
        let data = text_block(70);
        p.write(0, 0, &data).unwrap();
        p.flush(1).unwrap();
        assert_eq!(p.read(2, 0, 4096).unwrap(), data); // miss, fills cache
        assert_eq!(p.read(3, 0, 4096).unwrap(), data); // hit
        let s = p.stats().cache;
        assert!(s.hits > 0, "second read must be served from cache, stats {s:?}");
        assert!(s.hit_rate() > 0.0);
    }

    #[test]
    fn partial_overwrite_invalidates_cached_run() {
        // Mirror of partial_overwrite_of_merged_run_reads_fresh_data with
        // the read cache active: the overwrite must drop the cached
        // decompressed run so later reads never see stale block 1 bytes.
        let mut p = pipeline();
        assert!(p.config().cache_runs > 0, "cache enabled by default");
        let old: Vec<Vec<u8>> = (0..4).map(|i| text_block(80 + i)).collect();
        for (i, blockdata) in old.iter().enumerate() {
            p.write(i as u64, i as u64 * 4096, blockdata).unwrap();
        }
        p.flush(10).unwrap(); // one merged 4-block run
        // Populate the cache with the merged run's decompression.
        let first = p.read(20, 0, 4 * 4096).unwrap();
        assert_eq!(&first[4096..8192], &old[1][..]);
        assert!(p.stats().cache.misses > 0, "first read fills the cache");
        let fresh = random_block(777);
        p.write(30, 4096, &fresh).unwrap(); // overwrite only block 1
        p.flush(40).unwrap();
        assert!(
            p.stats().cache.invalidations > 0,
            "overwrite must invalidate the cached run, stats {:?}",
            p.stats().cache
        );
        let got = p.read(50, 0, 4 * 4096).unwrap();
        assert_eq!(&got[..4096], &old[0][..], "block 0 from the old run");
        assert_eq!(&got[4096..8192], &fresh[..], "block 1 must be the overwrite");
        assert_eq!(&got[8192..12288], &old[2][..], "block 2 from the old run");
        assert_eq!(&got[12288..], &old[3][..], "block 3 from the old run");
    }

    #[test]
    fn disabled_cache_reads_still_correct() {
        let mut p = EdcPipeline::new(
            4 << 20,
            PipelineConfig { cache_runs: 0, ..PipelineConfig::default() },
        );
        let a = text_block(90);
        let b = text_block(91);
        p.write(0, 0, &a).unwrap();
        p.write(1, 4096, &b).unwrap();
        p.flush(2).unwrap();
        let got = p.read(3, 0, 8192).unwrap();
        assert_eq!(&got[..4096], &a[..]);
        assert_eq!(&got[4096..], &b[..]);
        let s = p.stats().cache;
        assert_eq!((s.hits, s.misses), (0, 0), "disabled cache records nothing");
    }

    /// The smoke workload shared by the crash tests: a few merged runs, a
    /// write-through run, and an overwrite. Returns (offset, data) pairs
    /// describing the expected final contents.
    fn crash_workload(p: &mut EdcPipeline) -> Vec<(u64, Vec<u8>)> {
        let mut expect = Vec::new();
        for i in 0..6u64 {
            let data = text_block(i as u8);
            p.write(i, (i * 3) * 4096, &data).unwrap();
            expect.push(((i * 3) * 4096, data));
        }
        let rand = random_block(99);
        p.write(10, 40 * 4096, &rand).unwrap();
        expect.push((40 * 4096, rand));
        p.flush_all(20).unwrap();
        // Overwrite run 0 after the first flush.
        let v2 = text_block(200);
        p.write(30, 0, &v2).unwrap();
        p.flush_all(40).unwrap();
        expect[0] = (0, v2);
        expect
    }

    #[test]
    fn power_cut_at_every_program_recovers_with_zero_data_loss() {
        // Learn the clean run's program count, then cut at every index.
        let mut clean = pipeline();
        crash_workload(&mut clean);
        let total = clean.stats().programs;
        assert!(total > 8, "workload too small to exercise cuts ({total})");
        for cut in 0..total {
            let mut p = pipeline();
            p.set_fault_plan(FaultPlan {
                power_cut_after_programs: Some(cut),
                ..FaultPlan::none()
            });
            let mut cut_err = None;
            let expect = {
                // Drive the same workload; the cut surfaces as a typed
                // error somewhere along the way.
                let mut run = || -> Result<Vec<(u64, Vec<u8>)>, EdcError> {
                    let mut expect = Vec::new();
                    for i in 0..6u64 {
                        let data = text_block(i as u8);
                        p.write(i, (i * 3) * 4096, &data)?;
                        expect.push(((i * 3) * 4096, data));
                    }
                    let rand = random_block(99);
                    p.write(10, 40 * 4096, &rand)?;
                    expect.push((40 * 4096, rand));
                    p.flush_all(20)?;
                    let v2 = text_block(200);
                    p.write(30, 0, &v2)?;
                    p.flush_all(40)?;
                    expect[0] = (0, v2);
                    Ok(expect)
                };
                match run() {
                    Ok(e) => e,
                    Err(e) => {
                        cut_err = Some(e);
                        Vec::new()
                    }
                }
            };
            assert!(
                expect.is_empty(),
                "cut {cut}/{total} must interrupt the workload"
            );
            assert!(
                matches!(cut_err, Some(EdcError::Write(WriteError::PowerCut { .. }))),
                "cut {cut}: expected PowerCut, got {cut_err:?}"
            );
            // Store is offline until recovery.
            assert!(matches!(p.read(50, 0, 4096), Err(ReadError::Offline)));
            assert!(matches!(
                p.write(50, 0, &text_block(0)),
                Err(EdcError::Write(WriteError::Offline))
            ));
            let report = p.recover().expect("recovery succeeds at any cut point");
            assert_eq!(
                report.payload_mismatches, 0,
                "cut {cut}: journaled runs must never lose payload"
            );
            assert!(!report.torn_tail, "commit-record granularity leaves no torn tail");
            // Every journaled run reads back exactly; blocks whose run
            // missed its commit read as never-written (zero) or their
            // pre-overwrite contents — never garbage.
            let clean_expect = {
                let mut c = pipeline();
                crash_workload(&mut c)
            };
            let old0 = text_block(0);
            for (off, data) in &clean_expect {
                let got = p.read(60, *off, 4096).expect("post-recovery read");
                if *off == 0 {
                    assert!(
                        got == *data || got == old0 || got == vec![0u8; 4096],
                        "cut {cut}: block 0 must be v2, v1 or unwritten"
                    );
                } else {
                    assert!(
                        got == *data || got == vec![0u8; 4096],
                        "cut {cut}: offset {off} must be its data or unwritten"
                    );
                }
            }
            // The store accepts writes again.
            p.write(70, 80 * 4096, &text_block(3)).unwrap();
            p.flush_all(80).unwrap();
        }
    }

    #[test]
    fn recover_on_healthy_store_rebuilds_identical_state() {
        let mut p = pipeline();
        let expect = crash_workload(&mut p);
        let report = p.recover().expect("recovery on a healthy store");
        assert_eq!(report.payload_mismatches, 0);
        assert_eq!(u64::from(report.torn_tail), 0);
        assert!(report.replayed_runs > 0);
        for (off, data) in &expect {
            assert_eq!(&p.read(100, *off, 4096).unwrap(), data, "offset {off}");
        }
    }

    #[test]
    fn torn_journal_tail_drops_only_the_torn_record() {
        let mut p = pipeline();
        let expect = crash_workload(&mut p);
        // Tear mid-way through the final record (as a cut inside a real
        // journal page program would).
        p.truncate_journal_bytes(p.stats().journal_bytes as usize - 10);
        let report = p.recover().expect("recovery tolerates a torn tail");
        assert!(report.torn_tail);
        assert_eq!(report.payload_mismatches, 0);
        // All but the torn run read back; the torn one reads old/zero.
        for (off, data) in &expect[1..expect.len() - 1] {
            let got = p.read(100, *off, 4096).unwrap();
            assert!(got == *data || got == vec![0u8; 4096]);
        }
    }

    #[test]
    fn read_faults_surface_as_typed_errors_never_panic() {
        // Cache disabled so every read touches the "device" and draws.
        let mut p = EdcPipeline::new(
            4 << 20,
            PipelineConfig { cache_runs: 0, ..PipelineConfig::default() },
        );
        let data = text_block(5);
        p.write(0, 0, &data).unwrap();
        p.flush_all(1).unwrap();
        p.set_fault_plan(FaultPlan {
            seed: 7,
            read_error_rate: 0.9,
            read_retries: 1,
            ..FaultPlan::none()
        });
        let mut errors = 0;
        let mut oks = 0;
        for i in 0..50u64 {
            match p.read(10 + i, 0, 4096) {
                Ok(got) => {
                    assert_eq!(got, data);
                    oks += 1;
                }
                Err(ReadError::Unrecoverable { run_start }) => {
                    assert_eq!(run_start, 0);
                    errors += 1;
                }
                Err(other) => panic!("unexpected error {other:?}"),
            }
        }
        assert!(errors > 0, "90 % fault rate with 1 retry must fail sometimes");
        assert!(oks + errors == 50, "every read returns, typed either way");
        assert!(p.fault_stats().read_faults > 0);
    }

    #[test]
    fn bit_rot_is_caught_by_checksums() {
        let mut p = EdcPipeline::new(
            4 << 20,
            PipelineConfig { cache_runs: 0, ..PipelineConfig::default() },
        );
        let data = text_block(9);
        p.write(0, 0, &data).unwrap();
        p.flush_all(1).unwrap();
        p.set_fault_plan(FaultPlan { seed: 3, bit_rot_rate: 1.0, ..FaultPlan::none() });
        // Every device access rots one stored bit; the checksum must catch
        // it before the decompressor can return wrong bytes.
        let mut mismatches = 0;
        for i in 0..4u64 {
            match p.read(10 + i, 0, 4096) {
                Ok(got) => assert_eq!(got, data, "a served read must be correct"),
                Err(ReadError::ChecksumMismatch { run_start }) => {
                    assert_eq!(run_start, 0);
                    mismatches += 1;
                }
                Err(other) => panic!("unexpected error {other:?}"),
            }
        }
        assert!(mismatches > 0, "persistent rot must eventually trip the checksum");
        assert!(p.fault_stats().rot_pages > 0);
    }

    #[test]
    fn degraded_reads_serve_raw_write_through_payload() {
        let mut p = pipeline();
        let data = random_block(123); // incompressible → write-through
        p.write(0, 0, &data).unwrap();
        let r = p.flush(1).unwrap().unwrap();
        assert_eq!(r.tag, CodecId::None);
        // Corrupt one stored byte behind the pipeline's back.
        let entry = p.map.get(0).unwrap();
        p.device[entry.device_offset as usize + 10] ^= 0xFF;
        // Strict mode: hard error.
        assert!(matches!(p.read(2, 0, 4096), Err(ReadError::ChecksumMismatch { .. })));
        assert_eq!(p.stats().degraded_reads, 0);
        // Degraded mode: serve the raw payload, count it.
        p.set_fault_plan(FaultPlan { allow_degraded_reads: true, ..FaultPlan::none() });
        let got = p.read(3, 0, 4096).unwrap();
        assert_eq!(got.len(), 4096);
        let mut diff = 0;
        for (a, b) in got.iter().zip(data.iter()) {
            if a != b {
                diff += 1;
            }
        }
        assert_eq!(diff, 1, "exactly the corrupted byte differs");
        assert_eq!(p.stats().degraded_reads, 1);
    }

    #[test]
    fn journal_grows_one_record_per_committed_run() {
        let mut p = pipeline();
        assert_eq!(p.stats().journal_records, 0);
        crash_workload(&mut p);
        assert!(p.stats().journal_records >= 8, "records {}", p.stats().journal_records);
        assert_eq!(
            p.stats().journal_bytes as usize,
            p.stats().journal_records as usize * crate::journal::RECORD_BYTES
        );
    }

    fn parity_pipeline() -> EdcPipeline {
        EdcPipeline::new(
            4 << 20,
            PipelineConfig { parity: true, ..PipelineConfig::default() },
        )
    }

    /// Write one compressed and one write-through run under parity.
    /// Returns their (offset, data) pairs.
    fn parity_workload(p: &mut EdcPipeline) -> Vec<(u64, Vec<u8>)> {
        let mut stored = Vec::new();
        let mut big = text_block(70);
        big.extend(text_block(71));
        big.extend(text_block(72));
        stored.push((0u64, big)); // compresses → multi-page payload
        stored.push((8 * 4096, random_block(99))); // write-through
        for (i, (off, data)) in stored.iter().enumerate() {
            p.write(i as u64, *off, data).unwrap();
            p.flush(10 + i as u64).unwrap();
        }
        stored
    }

    #[test]
    fn parity_runs_round_trip_and_carry_the_extra_page() {
        let mut p = parity_pipeline();
        let stored = parity_workload(&mut p);
        for (i, (off, data)) in stored.iter().enumerate() {
            assert_eq!(&p.read(100 + i as u64, *off, data.len() as u64).unwrap(), data);
        }
        for entry in p.map.live_runs() {
            assert!(entry.parity);
            assert!(
                entry.stored_bytes >= entry.compressed_bytes + BLOCK_BYTES,
                "slot must hold payload plus a parity page"
            );
        }
        // A clean store scrubs clean.
        let report = p.scrub().unwrap();
        assert_eq!(report.scanned, 2);
        assert_eq!(report.clean, 2);
        assert_eq!((report.repaired, report.unrecoverable), (0, 0));
    }

    #[test]
    fn parity_runs_survive_recovery() {
        let mut p = parity_pipeline();
        let stored = parity_workload(&mut p);
        let report = p.recover().unwrap();
        assert_eq!(report.replayed_runs, 2);
        assert_eq!(report.payload_mismatches, 0);
        for (i, (off, data)) in stored.iter().enumerate() {
            assert_eq!(&p.read(200 + i as u64, *off, data.len() as u64).unwrap(), data);
        }
    }

    #[test]
    fn scrub_repairs_rotted_payload_page_from_parity() {
        let mut p = parity_pipeline();
        let stored = parity_workload(&mut p);
        // Rot one byte in each run's stored payload, behind the pipeline.
        for (off, _) in &stored {
            let entry = p.map.get(off / BLOCK_BYTES).unwrap();
            p.device[(entry.device_offset + entry.compressed_bytes / 2) as usize] ^= 0x40;
        }
        let report = p.scrub().unwrap();
        assert_eq!(report.scanned, 2);
        assert_eq!(report.repaired, 2, "both rotted runs must heal: {report:?}");
        assert_eq!(report.unrecoverable, 0);
        // Healed data reads back exactly; a second pass finds nothing.
        for (i, (off, data)) in stored.iter().enumerate() {
            assert_eq!(&p.read(300 + i as u64, *off, data.len() as u64).unwrap(), data);
        }
        let again = p.scrub().unwrap();
        assert_eq!(again.clean, again.scanned);
        // The durable rewrite journaled the repaired runs anew, so even a
        // crash right now loses nothing.
        p.recover().unwrap();
        for (i, (off, data)) in stored.iter().enumerate() {
            assert_eq!(&p.read(400 + i as u64, *off, data.len() as u64).unwrap(), data);
        }
    }

    #[test]
    fn scrub_refreshes_stale_parity_page_in_place() {
        let mut p = parity_pipeline();
        let stored = parity_workload(&mut p);
        let entry = p.map.get(0).unwrap();
        // Rot the parity page itself; the payload stays healthy.
        let at = (entry.device_offset + entry.stored_bytes) as usize - 1;
        p.device[at] ^= 0x01;
        let before = entry.device_offset;
        let report = p.scrub().unwrap();
        assert_eq!(report.repaired, 1, "{report:?}");
        assert_eq!(
            p.map.get(0).unwrap().device_offset,
            before,
            "healthy payload must not move for a parity refresh"
        );
        // Parity is whole again: rot the payload and repair must work.
        p.device[p.map.get(0).unwrap().device_offset as usize] ^= 0x80;
        assert_eq!(p.scrub().unwrap().repaired, 1);
        assert_eq!(&p.read(500, 0, stored[0].1.len() as u64).unwrap(), &stored[0].1);
    }

    #[test]
    fn scrub_without_parity_reports_unrecoverable_and_leaves_run() {
        let mut p = pipeline(); // parity off
        let data = text_block(44);
        p.write(0, 0, &data).unwrap();
        p.flush(1).unwrap();
        let entry = p.map.get(0).unwrap();
        p.device[entry.device_offset as usize] ^= 0x04;
        let report = p.scrub().unwrap();
        assert_eq!(report.unrecoverable, 1, "{report:?}");
        assert_eq!(report.repaired, 0);
        // The run stays mapped (degraded policies may still want it)…
        assert!(matches!(p.read(2, 0, 4096), Err(ReadError::ChecksumMismatch { .. })));
    }

    #[test]
    fn foreground_read_repairs_from_parity_without_a_scrub() {
        let mut p = parity_pipeline();
        let stored = parity_workload(&mut p);
        for (off, _) in &stored {
            let entry = p.map.get(off / BLOCK_BYTES).unwrap();
            p.device[entry.device_offset as usize] ^= 0x20;
        }
        // No scrub: the read itself reconstructs both the compressed and
        // the write-through payloads.
        for (i, (off, data)) in stored.iter().enumerate() {
            assert_eq!(&p.read(600 + i as u64, *off, data.len() as u64).unwrap(), data);
        }
        assert_eq!(p.stats().degraded_reads, 0, "repair must beat degradation");
        // The in-place patch restored the journaled bytes: recovery agrees.
        assert_eq!(p.recover().unwrap().payload_mismatches, 0);
    }

    #[test]
    fn scrub_rewrite_invalidates_stale_cache_entry() {
        // Satellite: a scrub rewrite frees the old slot; if its cached
        // decompression survived, a later run reusing that offset would
        // serve the dead run's bytes.
        let mut p = parity_pipeline();
        let v1 = text_block(81);
        p.write(0, 0, &v1).unwrap();
        p.flush(1).unwrap();
        // Populate the read cache for the run's (old) device offset.
        assert_eq!(p.read(2, 0, 4096).unwrap(), v1);
        let old = p.map.get(0).unwrap();
        assert!(p.cache.lookup(old.device_offset).is_some(), "cache should hold the run");
        // Rot the payload → scrub repairs and rewrites out-of-place.
        p.device[old.device_offset as usize] ^= 0x08;
        assert_eq!(p.scrub().unwrap().repaired, 1);
        let moved = p.map.get(0).unwrap();
        assert_ne!(moved.device_offset, old.device_offset, "repair must move the run");
        assert!(p.stats().cache.invalidations >= 1);
        // Same-sized overwrite of a different logical range: the freed
        // slot is reused for fresh content at the old device offset.
        let v2 = text_block(82);
        p.write(10, 64 * 4096, &v2).unwrap();
        p.flush(11).unwrap();
        let fresh = p.map.get(64).unwrap();
        assert_eq!(
            fresh.device_offset, old.device_offset,
            "test premise: the freed slot is reused (same size class)"
        );
        assert_eq!(p.read(20, 64 * 4096, 4096).unwrap(), v2, "stale cache must not leak");
        assert_eq!(p.read(21, 0, 4096).unwrap(), v1, "moved run still intact");
    }

    /// Low-entropy but match-poor content (4-symbol random): the fast LZ
    /// tier leaves a lot on the table that an entropy-coding codec
    /// recovers, so recompression has real headroom.
    fn lowent_block(seed: u64) -> Vec<u8> {
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                b"acgt"[(x >> 60) as usize & 3]
            })
            .collect()
    }

    /// Pipeline tuned for recompression tests: every write compresses
    /// with Lzf regardless of intensity, and heat extents match the
    /// 8-block run stride so each run cools independently.
    fn heat_pipeline(demote_ratio: f64) -> EdcPipeline {
        EdcPipeline::new(
            8 << 20,
            PipelineConfig {
                selector: SelectorConfig {
                    rungs: vec![crate::selector::LadderRung {
                        max_calc_iops: f64::INFINITY,
                        codec: CodecId::Lzf,
                    }],
                },
                heat: crate::heat::HeatConfig {
                    extent_blocks: 8,
                    demote_ratio,
                    ..crate::heat::HeatConfig::default()
                },
                ..PipelineConfig::default()
            },
        )
    }

    /// Write `runs` four-block runs of 4-ary content at an 8-block
    /// stride, one run per heat extent, and return the expected bytes.
    fn heat_workload(p: &mut EdcPipeline, runs: u64) -> Vec<(u64, Vec<u8>)> {
        let mut now = 0u64;
        let mut stored = Vec::new();
        for i in 0..runs {
            let data: Vec<u8> =
                (0..4).flat_map(|b| lowent_block(i * 16 + b)).collect();
            p.write(now, i * 8 * 4096, &data).unwrap();
            now += 1_000_000;
            stored.push((i * 8 * 4096, data));
        }
        p.flush_all(now).unwrap();
        stored
    }

    #[test]
    fn cold_runs_recompress_to_stronger_codec() {
        let mut p = heat_pipeline(1.1);
        let stored = heat_workload(&mut p, 8);
        let physical_before = p.stats().physical_written;
        let live_before = p.slots.live_bytes();
        // 200 s of silence: every extent decays far below the cold
        // threshold.
        let report = p.recompress_pass(200_000_000_000, CodecId::Deflate, usize::MAX).unwrap();
        assert!(report.recompressed > 0, "no cold run upgraded: {report:?}");
        assert!(report.bytes_reclaimed > 0);
        assert_eq!(report.demoted, 0);
        assert_eq!(report.skipped_unreadable, 0);
        assert_eq!(p.stats().recompressed_runs, report.recompressed);
        assert!(
            p.slots.live_bytes() < live_before,
            "recompression must shrink the live footprint: {} -> {}",
            live_before,
            p.slots.live_bytes()
        );
        assert!(p.stats().physical_written > physical_before, "rewrites are real flash writes");
        // Logical bytes are untouched...
        for (i, (off, data)) in stored.iter().enumerate() {
            assert_eq!(
                &p.read(200_000_100_000 + i as u64, *off, data.len() as u64).unwrap(),
                data,
                "run {i} changed by recompression"
            );
        }
        // ...the store still audits clean, and the rewrites are durable:
        // recovery replays the recompressed runs from the journal.
        let v = p.verify().unwrap();
        assert_eq!(v.unrecoverable, 0);
        p.recover().unwrap();
        for (i, (off, data)) in stored.iter().enumerate() {
            assert_eq!(
                &p.read(200_000_200_000 + i as u64, *off, data.len() as u64).unwrap(),
                data,
                "run {i} lost across recovery"
            );
        }
    }

    #[test]
    fn second_pass_finds_nothing_left_to_do() {
        let mut p = heat_pipeline(1.1);
        heat_workload(&mut p, 6);
        let now = 200_000_000_000;
        let first = p.recompress_pass(now, CodecId::Deflate, usize::MAX).unwrap();
        assert!(first.recompressed > 0);
        let second = p.recompress_pass(now + 1, CodecId::Deflate, usize::MAX).unwrap();
        assert_eq!(second.recompressed, 0, "already at target tier: {second:?}");
        assert_eq!(second.demoted, 0);
    }

    #[test]
    fn rewrite_budget_bounds_work_per_pass() {
        let mut p = heat_pipeline(1.1);
        heat_workload(&mut p, 8);
        let report = p.recompress_pass(200_000_000_000, CodecId::Deflate, 2).unwrap();
        assert!(report.recompressed <= 2, "budget exceeded: {report:?}");
        assert_eq!(report.recompressed, 2, "budget not used: {report:?}");
    }

    #[test]
    fn hot_low_ratio_runs_demote_to_write_through() {
        // A generous demote threshold makes every compressed run "not
        // worth it" once hot, so the demotion path fires deterministically.
        let mut p = heat_pipeline(1_000.0);
        let stored = heat_workload(&mut p, 4);
        // Hammer run 0 with reads at the pass timestamp: its extent is
        // hot, everything else has cooled.
        let now = 200_000_000_000;
        for r in 0..8u64 {
            assert_eq!(p.read(now, 0, 4 * 4096).unwrap()[..], stored[0].1[..], "read {r}");
        }
        let report = p.recompress_pass(now, CodecId::Deflate, usize::MAX).unwrap();
        assert_eq!(report.demoted, 1, "exactly the hot run demotes: {report:?}");
        assert_eq!(p.stats().demoted_runs, 1);
        assert!(p.heat().run_demoted(0, 4));
        // Logical bytes unchanged, including the demoted run.
        for (i, (off, data)) in stored.iter().enumerate() {
            assert_eq!(
                &p.read(now + 10 + i as u64, *off, data.len() as u64).unwrap(),
                data,
                "run {i} changed by demotion"
            );
        }
        // The demoted extent is excluded from future recompression even
        // once cold — it would just get re-inflated reads.
        let later = p.recompress_pass(now + 400_000_000_000, CodecId::Deflate, usize::MAX).unwrap();
        assert_eq!(later.recompressed, 0, "demoted run re-promoted: {later:?}");
        assert!(later.skipped_demoted >= 1);
        // After a crash the volatile flag resets with the heat; the run
        // must re-cool before the pass touches it again, and every byte
        // survives.
        p.recover().unwrap();
        assert!(!p.heat().run_demoted(0, 4));
        for (i, (off, data)) in stored.iter().enumerate() {
            assert_eq!(
                &p.read(now + 20 + i as u64, *off, data.len() as u64).unwrap(),
                data,
                "run {i} lost across recovery"
            );
        }
    }

    #[test]
    fn precompressed_hint_excluded_from_recompression() {
        let mut p = heat_pipeline(1.1);
        // Hinted range: written through at flush time (PR 2 contract)...
        p.set_hint(0, 8 * 4096, FileTypeHint::Precompressed);
        let hinted: Vec<u8> = (0..4).flat_map(|b| lowent_block(900 + b)).collect();
        p.write(0, 0, &hinted).unwrap();
        // ...plus an unhinted control run that should recompress. Writing
        // it breaks sequentiality, so this call flushes the hinted run.
        let control: Vec<u8> = (0..4).flat_map(|b| lowent_block(950 + b)).collect();
        let hinted_result = p.write(1_000_000, 8 * 4096, &control).unwrap();
        assert_eq!(
            hinted_result.expect("hinted run flushed").tag,
            CodecId::None,
            "hint forces write-through"
        );
        p.flush_all(2_000_000).unwrap();
        let records_before = p.stats().journal_records;
        let report = p.recompress_pass(200_000_000_000, CodecId::Deflate, usize::MAX).unwrap();
        assert!(report.skipped_precompressed >= 1, "{report:?}");
        assert_eq!(report.recompressed, 1, "only the control run moves: {report:?}");
        // Exactly one rewrite hit the journal — the hinted run (tag None,
        // cold, nominally upgradeable) appended nothing.
        assert_eq!(p.stats().journal_records, records_before + 1);
        assert_eq!(p.read(200_000_000_001, 0, hinted.len() as u64).unwrap(), hinted);
        assert_eq!(
            p.read(200_000_000_002, 8 * 4096, control.len() as u64).unwrap(),
            control
        );
    }

    #[test]
    fn recompression_relocation_never_serves_stale_cache() {
        // Overwrite-churn against background recompression: every round
        // relocates cold runs (freeing slots) and rewrites fresh data
        // (reusing them). A stale cache entry keyed by a recycled device
        // offset would surface as a wrong read immediately.
        let mut p = heat_pipeline(1.1);
        let mut now = 0u64;
        let mut expect: Vec<(u64, Vec<u8>)> = Vec::new();
        for i in 0..6u64 {
            let data: Vec<u8> = (0..4).flat_map(|b| lowent_block(i * 16 + b)).collect();
            p.write(now, i * 8 * 4096, &data).unwrap();
            now += 1_000_000;
            expect.push((i * 8 * 4096, data));
        }
        p.flush_all(now).unwrap();
        for round in 1..20u64 {
            // Populate the cache for every run...
            for (off, data) in &expect {
                assert_eq!(
                    &p.read(now, *off, data.len() as u64).unwrap(),
                    data,
                    "round {round} pre-read"
                );
            }
            // ...cool everything and relocate it...
            now += 400_000_000_000;
            p.recompress_pass(now, CodecId::Deflate, usize::MAX).unwrap();
            // ...then overwrite half the runs with fresh content, which
            // recycles freed slots of the same size classes.
            for (i, (off, data)) in expect.iter_mut().enumerate() {
                if i as u64 % 2 == round % 2 {
                    continue;
                }
                *data = (0..4)
                    .flat_map(|b| lowent_block(round * 1_000 + i as u64 * 16 + b))
                    .collect();
                p.write(now, *off, data).unwrap();
                now += 1_000_000;
            }
            p.flush_all(now).unwrap();
            for (i, (off, data)) in expect.iter().enumerate() {
                assert_eq!(
                    &p.read(now + i as u64, *off, data.len() as u64).unwrap(),
                    data,
                    "round {round} run {i}: stale bytes served"
                );
            }
        }
        assert!(p.stats().cache.invalidations > 0, "churn never hit the cache");
        assert!(p.stats().recompressed_runs > 0, "churn never recompressed");
    }

    #[test]
    fn power_cut_mid_recompression_loses_no_data() {
        // Cut at each of the first programs of the recompression pass:
        // whatever the journal holds at the cut — old record or new —
        // recovery must serve every original byte.
        for cut in 0..8u64 {
            let mut p = heat_pipeline(1.1);
            let stored = heat_workload(&mut p, 4);
            p.set_fault_plan(FaultPlan {
                power_cut_after_programs: Some(cut),
                ..FaultPlan::none()
            });
            match p.recompress_pass(200_000_000_000, CodecId::Deflate, usize::MAX) {
                Ok(report) => assert!(report.recompressed > 0, "cut {cut} did nothing"),
                Err(EdcError::Write(WriteError::PowerCut { .. })) => {}
                Err(other) => panic!("cut {cut}: unexpected error {other:?}"),
            }
            let report = p.recover().unwrap();
            assert_eq!(report.payload_mismatches, 0, "cut {cut}");
            for (i, (off, data)) in stored.iter().enumerate() {
                assert_eq!(
                    &p.read(900 + i as u64, *off, data.len() as u64).unwrap(),
                    data,
                    "cut {cut}: run {i} lost"
                );
            }
        }
    }

    #[test]
    fn disabled_heat_makes_the_pass_a_no_op() {
        let mut p = EdcPipeline::new(
            4 << 20,
            PipelineConfig {
                heat: crate::heat::HeatConfig { enabled: false, ..Default::default() },
                ..PipelineConfig::default()
            },
        );
        p.write(0, 0, &text_block(1)).unwrap();
        p.flush_all(1).unwrap();
        let report = p.recompress_pass(200_000_000_000, CodecId::Deflate, usize::MAX).unwrap();
        assert_eq!(report, RecompressReport::default());
    }

    #[test]
    fn power_cut_mid_scrub_rewrite_loses_no_data() {
        // Sweep the cut across every program of the scrub's rewrite: at
        // any cut point, recovery must bring back every byte (the old run
        // was repaired in place before the rewrite began).
        for cut in 0..6u64 {
            let mut p = parity_pipeline();
            let stored = parity_workload(&mut p);
            let entry = p.map.get(0).unwrap();
            p.device[(entry.device_offset + 1) as usize] ^= 0x02;
            p.set_fault_plan(FaultPlan {
                power_cut_after_programs: Some(cut),
                ..FaultPlan::none()
            });
            match p.scrub() {
                Ok(report) => assert_eq!(report.repaired, 1, "cut {cut}: {report:?}"),
                Err(EdcError::Write(WriteError::PowerCut { .. })) => {}
                Err(other) => panic!("cut {cut}: unexpected error {other:?}"),
            }
            let report = p.recover().unwrap();
            assert_eq!(report.payload_mismatches, 0, "cut {cut}");
            for (i, (off, data)) in stored.iter().enumerate() {
                assert_eq!(
                    &p.read(900 + i as u64, *off, data.len() as u64).unwrap(),
                    data,
                    "cut {cut}: data lost"
                );
            }
        }
    }

    fn dedup_pipeline() -> EdcPipeline {
        EdcPipeline::new(
            8 << 20,
            PipelineConfig {
                dedup: DedupConfig { enabled: true, ..DedupConfig::default() },
                ..PipelineConfig::default()
            },
        )
    }

    #[test]
    fn dedup_hit_elides_flash_programs_and_storage() {
        let mut p = dedup_pipeline();
        let data = text_block(7);
        p.write(0, 0, &data).unwrap();
        p.flush(1).unwrap();
        let physical_once = p.stats().physical_written;
        let live_once = p.live_stored_bytes();
        // The same bytes at a far-away logical block: a dedup hit.
        p.write(10, 10 * 4096, &data).unwrap();
        let r = p.flush(11).unwrap().expect("sealed run");
        assert_eq!(r.allocated_bytes, 0, "a hit allocates no flash");
        let stats = p.stats();
        assert_eq!(stats.dedup_hits, 1);
        assert_eq!(stats.dedup_elided_bytes, 4096);
        assert_eq!(stats.physical_written, physical_once, "a hit programs no page data");
        assert_eq!(p.live_stored_bytes(), live_once, "a hit stores no new payload");
        assert_eq!(p.read(20, 0, 4096).unwrap(), data);
        assert_eq!(p.read(21, 10 * 4096, 4096).unwrap(), data);
        let report = p.verify_dedup().unwrap();
        assert_eq!(report.shared_runs, 1);
        assert_eq!(report.extra_refs, 1);
    }

    #[test]
    fn duplicate_within_one_drain_dedups_against_earlier_chunk() {
        let mut p = dedup_pipeline();
        let data = text_block(9);
        // Two identical single-block runs sealed into the same drain: the
        // second must share the first's freshly stored run.
        p.write(0, 0, &data).unwrap();
        p.write(1, 20 * 4096, &data).unwrap();
        p.flush_all(2).unwrap();
        assert_eq!(p.stats().dedup_hits, 1);
        assert_eq!(p.read(3, 0, 4096).unwrap(), data);
        assert_eq!(p.read(4, 20 * 4096, 4096).unwrap(), data);
        assert_eq!(p.verify_dedup().unwrap().shared_runs, 1);
    }

    #[test]
    fn overwrite_releases_refs_and_zero_ref_run_is_freed() {
        let mut p = dedup_pipeline();
        let dup = text_block(3);
        p.write(0, 0, &dup).unwrap();
        p.flush(1).unwrap();
        p.write(10, 10 * 4096, &dup).unwrap();
        p.flush(11).unwrap();
        assert_eq!(p.verify_dedup().unwrap().shared_runs, 1);
        let live_shared = p.live_stored_bytes();
        // Overwrite one referrer: the run drops back to a single ref.
        let fresh = random_block(77);
        p.write(20, 0, &fresh).unwrap();
        p.flush(21).unwrap();
        let report = p.verify_dedup().unwrap();
        assert_eq!(report.shared_runs, 0, "one referrer left");
        assert_eq!(p.read(30, 0, 4096).unwrap(), fresh);
        assert_eq!(p.read(31, 10 * 4096, 4096).unwrap(), dup);
        // Overwrite the last referrer: the run reaches zero refs and its
        // slot is reclaimed (live bytes fall below the shared steady state).
        let fresh2 = random_block(99);
        p.write(40, 10 * 4096, &fresh2).unwrap();
        p.flush(41).unwrap();
        p.verify_dedup().unwrap();
        assert_eq!(p.read(50, 10 * 4096, 4096).unwrap(), fresh2);
        assert!(
            p.live_stored_bytes() > live_shared,
            "two incompressible blocks replaced one shared text run"
        );
        let v = p.verify().unwrap();
        assert_eq!(v.unrecoverable, 0);
    }

    #[test]
    fn long_sequential_run_is_chunked_at_content_defined_cuts() {
        let mut p = dedup_pipeline();
        let blocks = 40u64;
        let data: Vec<u8> = (0..blocks).flat_map(|i| random_block(i * 31 + 5)).collect();
        p.write(0, 0, &data).unwrap();
        let results = p.flush_all(1).unwrap();
        assert!(results.len() >= 2, "a {blocks}-block run must split (max 16 blocks/chunk)");
        let max = p.config().dedup.max_chunk_blocks;
        let mut covered = 0u64;
        for r in &results {
            assert!(r.blocks <= max, "chunk of {} blocks exceeds max {max}", r.blocks);
            covered += u64::from(r.blocks);
        }
        assert_eq!(covered, blocks, "chunks must tile the run exactly");
        assert_eq!(p.read(2, 0, blocks * 4096).unwrap(), data);
        // Rewriting the same content elsewhere dedups chunk-for-chunk:
        // identical bytes produce identical cut points.
        p.write(10, 64 * 4096, &data).unwrap();
        p.flush_all(11).unwrap();
        assert_eq!(p.stats().dedup_hits, results.len() as u64);
        assert_eq!(p.read(12, 64 * 4096, blocks * 4096).unwrap(), data);
        p.verify_dedup().unwrap();
    }

    #[test]
    fn recovery_rebuilds_the_refcount_ledger() {
        let mut p = dedup_pipeline();
        let dup = text_block(6);
        p.write(0, 0, &dup).unwrap();
        p.flush(1).unwrap();
        p.write(10, 10 * 4096, &dup).unwrap();
        p.flush(11).unwrap();
        p.cut_power();
        let report = p.recover().unwrap();
        assert_eq!(report.payload_mismatches, 0);
        let d = p.verify_dedup().unwrap();
        assert_eq!(d.shared_runs, 1, "the Ref record must rebuild sharing");
        assert_eq!(p.read(20, 0, 4096).unwrap(), dup);
        assert_eq!(p.read(21, 10 * 4096, 4096).unwrap(), dup);
        // The rebuilt refcounts must gate freeing: dropping one referrer
        // keeps the other readable, dropping both reclaims the slot.
        p.write(30, 0, &random_block(1)).unwrap();
        p.flush(31).unwrap();
        assert_eq!(p.read(40, 10 * 4096, 4096).unwrap(), dup);
        p.write(50, 10 * 4096, &random_block(2)).unwrap();
        p.flush(51).unwrap();
        p.verify_dedup().unwrap();
        assert_eq!(p.verify().unwrap().unrecoverable, 0);
        // A second recovery replays the overwrites' releases too.
        p.cut_power();
        p.recover().unwrap();
        p.verify_dedup().unwrap();
        assert_eq!(p.read(60, 10 * 4096, 4096).unwrap(), random_block(2));
    }

    #[test]
    fn recompression_relocates_shared_runs_and_repoints_sharers() {
        let mut p = EdcPipeline::new(
            8 << 20,
            PipelineConfig {
                selector: SelectorConfig {
                    rungs: vec![crate::selector::LadderRung {
                        max_calc_iops: f64::INFINITY,
                        codec: CodecId::Lzf,
                    }],
                },
                heat: crate::heat::HeatConfig {
                    extent_blocks: 8,
                    demote_ratio: 1.1,
                    ..crate::heat::HeatConfig::default()
                },
                dedup: DedupConfig { enabled: true, ..DedupConfig::default() },
                ..PipelineConfig::default()
            },
        );
        let data: Vec<u8> = (0..4).flat_map(lowent_block).collect();
        p.write(0, 0, &data).unwrap();
        p.flush_all(1).unwrap();
        p.write(1_000_000, 16 * 4096, &data).unwrap();
        p.flush_all(1_000_001).unwrap();
        assert!(p.stats().dedup_hits >= 1, "identical 4-block runs must share");
        let shared_before = p.verify_dedup().unwrap().shared_runs;
        assert!(shared_before >= 1);
        // Long silence cools every extent; the pass upgrades Lzf → Deflate,
        // relocating shared runs and re-pointing every sharer.
        let report = p.recompress_pass(300_000_000_000, CodecId::Deflate, usize::MAX).unwrap();
        assert!(report.recompressed > 0, "{report:?}");
        assert_eq!(p.read(300_000_000_001, 0, data.len() as u64).unwrap(), data);
        assert_eq!(p.read(300_000_000_002, 16 * 4096, data.len() as u64).unwrap(), data);
        let d = p.verify_dedup().unwrap();
        assert_eq!(d.shared_runs, shared_before, "sharing survives relocation");
        assert_eq!(p.verify().unwrap().unrecoverable, 0);
        // The relocation journaled everything: recovery sees the moved run
        // and its re-pointed sharers.
        p.cut_power();
        p.recover().unwrap();
        p.verify_dedup().unwrap();
        assert_eq!(p.read(300_000_000_003, 0, data.len() as u64).unwrap(), data);
        assert_eq!(p.read(300_000_000_004, 16 * 4096, data.len() as u64).unwrap(), data);
    }

    #[test]
    fn dedup_off_leaves_behavior_and_ledger_empty() {
        let mut on = dedup_pipeline();
        let mut off = pipeline();
        let mut now = 0u64;
        for i in 0..24u64 {
            let data = if i % 3 == 0 { text_block(1) } else { text_block(i as u8) };
            on.write(now, i * 2 * 4096, &data).unwrap();
            off.write(now, i * 2 * 4096, &data).unwrap();
            now += 1_000_000;
        }
        on.flush_all(now).unwrap();
        off.flush_all(now).unwrap();
        assert_eq!(off.stats().dedup_hits, 0);
        assert_eq!(off.stats().dedup_elided_bytes, 0);
        assert!(on.stats().dedup_hits > 0);
        // Same logical contents either way.
        for i in 0..24u64 {
            assert_eq!(
                on.read(now + i, i * 2 * 4096, 4096).unwrap(),
                off.read(now + i, i * 2 * 4096, 4096).unwrap(),
            );
        }
        // ...but the deduped store programs less flash.
        assert!(on.stats().physical_written < off.stats().physical_written);
        off.verify_dedup().unwrap();
    }

    #[test]
    fn verify_dedup_catches_a_tampered_ledger() {
        let mut p = dedup_pipeline();
        let dup = text_block(4);
        p.write(0, 0, &dup).unwrap();
        p.flush(1).unwrap();
        p.write(10, 10 * 4096, &dup).unwrap();
        p.flush(11).unwrap();
        let off = p.map.get(0).expect("mapped").device_offset;
        p.dedup.purge(off);
        let err = p.verify_dedup().unwrap_err();
        assert!(matches!(err, EdcError::Integrity(_)), "{err}");
    }

    #[test]
    fn shared_runs_survive_gc_churn_with_verified_ledger() {
        let mut p = dedup_pipeline();
        let dup_a = text_block(11);
        let dup_b = text_block(22);
        let mut now = 0u64;
        // Churn: hot rotation of duplicate and unique content over a small
        // logical window forces constant allocate/release traffic while
        // two duplicate families stay permanently shared.
        for round in 0..12u64 {
            for slot in 0..6u64 {
                let data = match (round + slot) % 3 {
                    0 => dup_a.clone(),
                    1 => dup_b.clone(),
                    _ => random_block(round * 131 + slot),
                };
                p.write(now, slot * 4 * 4096, &data).unwrap();
                now += 1_000_000;
            }
            p.flush_all(now).unwrap();
            now += 1_000_000;
            // The ledger and mapping must agree after every drain; a run
            // with outstanding refs being erased would trip this (or the
            // SlotStore's own release panic) immediately.
            p.verify_dedup().unwrap();
            assert_eq!(p.verify().unwrap().unrecoverable, 0);
        }
        assert!(p.stats().dedup_hits > 0);
        for slot in 0..6u64 {
            let expect = match (11 + slot) % 3 {
                0 => dup_a.clone(),
                1 => dup_b.clone(),
                _ => random_block(11 * 131 + slot),
            };
            assert_eq!(p.read(now, slot * 4 * 4096, 4096).unwrap(), expect, "slot {slot}");
        }
    }
}
