//! The real-bytes EDC pipeline: a usable compressed block store.
//!
//! [`EdcPipeline`] is the library front-end of EDC for actual data (the
//! trace-replay experiments use [`crate::scheme`] instead, with modelled
//! content). Give it 4 KiB-aligned writes and it runs the full paper
//! pipeline — workload monitor, sequentiality detector, sampling
//! compressibility estimate, threshold-ladder codec selection, real
//! compression with the `edc-compress` codecs, quantized allocation — and
//! stores the result in an in-memory device image. Reads locate the run
//! via the mapping table, decompress according to the 3-bit tag, and
//! return the original bytes.
//!
//! # Batched multi-core writes
//!
//! The write path is *batched*: each flush trigger **seals** a run —
//! capturing the codec decision (hint, sampling estimate, intensity
//! ladder) at that instant, exactly as the serial path would — and queues
//! it. [`EdcPipeline::write_batch`] / [`EdcPipeline::flush_all`] then
//! **drain** the queue: all sealed runs are compressed at once, fanned
//! across `PipelineConfig::workers` threads into per-run reusable scratch
//! buffers ([`edc_compress::Codec::compress_into`], so the steady state
//! allocates nothing per run), and the results are applied — allocation,
//! device write, mapping update — serially in seal order. Compression is
//! a pure function, so the batched store is bit-identical to the serial
//! one; only the wall-clock differs.
//!
//! Reads consult a decompressed-run LRU ([`crate::cache::RunCache`])
//! keyed by the run's device offset; overwrites invalidate it. A hit
//! serves the read from DRAM, skipping both the device fetch and the
//! decompressor. Write-through runs bypass the cache entirely — their
//! payload already lies uncompressed in the device image and is copied
//! out directly.
//!
//! ```
//! use edc_core::pipeline::{BatchWrite, EdcPipeline, PipelineConfig};
//!
//! let mut store = EdcPipeline::new(1 << 20, PipelineConfig::default());
//! let block = vec![b'x'; 4096];
//! store.write(0, 0, &block);
//! store.flush(1_000_000); // or let the next read/non-contiguous write flush
//! assert_eq!(store.read(2_000_000, 0, 4096).unwrap(), block);
//!
//! // Batched: hand over many writes at once; sealed runs compress in
//! // parallel and the results come back in seal order.
//! let batch: Vec<BatchWrite<'_>> = (0..4)
//!     .map(|i| BatchWrite { now_ns: 3_000_000 + i, offset: (8 + 3 * i) * 4096, data: &block })
//!     .collect();
//! let results = store.write_batch(&batch);
//! let tail = store.flush_all(4_000_000);
//! assert_eq!(results.len() + tail.len(), 4);
//! ```

use crate::allocator::{AllocPolicy, AllocStats, QuantizedAllocator};
use crate::cache::{CacheStats, RunCache};
use crate::hints::{FileTypeHint, HintRegistry};
use crate::mapping::{BlockMap, MappingEntry};
use crate::monitor::WorkloadMonitor;
use crate::scheme::BLOCK_BYTES;
use crate::sd::{MergedRun, SdConfig, SequentialityDetector};
use crate::selector::{AlgorithmSelector, SelectorConfig};
use crate::slots::SlotStore;
use edc_compress::{checksum64, codec_by_id, CodecId, DecompressError, Estimator, EstimatorConfig};
use edc_trace::{OpType, Request};

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Threshold ladder (calculated IOPS → codec).
    pub selector: SelectorConfig,
    /// Sequentiality-detector parameters.
    pub sd: SdConfig,
    /// Sampling-estimator parameters (includes the 75 % write-through rule).
    pub estimator: EstimatorConfig,
    /// Allocation policy.
    pub alloc: AllocPolicy,
    /// Worker threads compressing drained runs (1 = serial; results are
    /// bit-identical either way).
    pub workers: usize,
    /// Decompressed-run read-cache capacity, in runs (0 disables it).
    pub cache_runs: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            selector: SelectorConfig::default(),
            sd: SdConfig::default(),
            estimator: EstimatorConfig::default(),
            alloc: AllocPolicy::default(),
            workers: 1,
            cache_runs: 64,
        }
    }
}

/// One write in a [`EdcPipeline::write_batch`] call.
#[derive(Debug, Clone, Copy)]
pub struct BatchWrite<'a> {
    /// Arrival time, ns.
    pub now_ns: u64,
    /// Byte offset (4 KiB-aligned).
    pub offset: u64,
    /// Payload (whole 4 KiB blocks).
    pub data: &'a [u8],
}

/// A run whose codec decision is made but whose compression is deferred
/// to the next drain.
struct SealedRun {
    run: MergedRun,
    bytes: Vec<u8>,
    codec: CodecId,
}

/// What happened to a flushed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteResult {
    /// First logical block of the run.
    pub start_block: u64,
    /// Run length in blocks.
    pub blocks: u32,
    /// Codec actually used (`None` = written through).
    pub tag: CodecId,
    /// Compressed payload size (equals the raw size when written through).
    pub payload_bytes: u64,
    /// Flash bytes allocated (post-quantization).
    pub allocated_bytes: u64,
}

/// Errors from [`EdcPipeline::read`].
#[derive(Debug)]
pub enum ReadError {
    /// Stored payload failed to decompress — device image corruption.
    Corrupt(DecompressError),
    /// Stored payload hash does not match the mapping entry's checksum —
    /// silent corruption caught before decompression.
    ChecksumMismatch {
        /// First logical block of the damaged run.
        run_start: u64,
    },
    /// Read is not 4 KiB-aligned.
    Unaligned,
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Corrupt(e) => write!(f, "stored data corrupt: {e}"),
            ReadError::ChecksumMismatch { run_start } => {
                write!(f, "checksum mismatch in run starting at block {run_start}")
            }
            ReadError::Unaligned => write!(f, "read must be 4 KiB aligned"),
        }
    }
}

impl std::error::Error for ReadError {}

/// An EDC-compressed block store over an in-memory device image.
pub struct EdcPipeline {
    config: PipelineConfig,
    monitor: WorkloadMonitor,
    selector: AlgorithmSelector,
    sd: SequentialityDetector,
    estimator: Estimator,
    allocator: QuantizedAllocator,
    slots: SlotStore,
    map: BlockMap,
    /// Device image: compressed payloads live at their slot offsets.
    device: Vec<u8>,
    /// Bytes of the run currently buffered in the SD.
    pending: Vec<u8>,
    /// Runs sealed (codec decided) but not yet compressed/stored. Lives
    /// only within a single public call: every entry point drains it.
    sealed: Vec<SealedRun>,
    /// Reusable compression output buffers, one per in-flight drain job.
    scratch: Vec<Vec<u8>>,
    /// Decompressed-run LRU, keyed by device offset (unique per live run).
    cache: RunCache<Vec<u8>>,
    /// File-type semantic hints (paper §VI future work #1).
    hints: HintRegistry,
    logical_written: u64,
    physical_written: u64,
}

impl EdcPipeline {
    /// Create a store over `capacity_bytes` of device space.
    pub fn new(capacity_bytes: u64, config: PipelineConfig) -> Self {
        assert!(capacity_bytes >= BLOCK_BYTES, "capacity below one block");
        EdcPipeline {
            selector: AlgorithmSelector::new(config.selector.clone()),
            sd: SequentialityDetector::new(config.sd),
            estimator: Estimator::new(config.estimator),
            allocator: QuantizedAllocator::new(config.alloc),
            slots: SlotStore::new(capacity_bytes),
            map: BlockMap::new(),
            device: vec![0; capacity_bytes as usize],
            pending: Vec::new(),
            sealed: Vec::new(),
            scratch: Vec::new(),
            cache: RunCache::new(config.cache_runs),
            hints: HintRegistry::new(),
            monitor: WorkloadMonitor::default(),
            logical_written: 0,
            physical_written: 0,
            config,
        }
    }

    /// Write `data` (a multiple of 4 KiB) at byte `offset` (4 KiB-aligned)
    /// at time `now_ns`. Returns the result of any run this write flushed;
    /// the written data itself is buffered until a flush trigger.
    pub fn write(&mut self, now_ns: u64, offset: u64, data: &[u8]) -> Option<WriteResult> {
        self.write_batch(&[BatchWrite { now_ns, offset, data }]).pop()
    }

    /// Accept a batch of writes at once. Runs sealed during the batch are
    /// compressed together at the end, fanned across
    /// [`PipelineConfig::workers`] threads; results come back in seal
    /// order and are bit-identical to issuing the same writes serially.
    pub fn write_batch(&mut self, writes: &[BatchWrite<'_>]) -> Vec<WriteResult> {
        for w in writes {
            assert!(w.offset.is_multiple_of(BLOCK_BYTES), "offset must be 4 KiB aligned");
            assert!(
                !w.data.is_empty() && (w.data.len() as u64).is_multiple_of(BLOCK_BYTES),
                "data must be whole blocks"
            );
            let start = w.offset / BLOCK_BYTES;
            let blocks = (w.data.len() as u64 / BLOCK_BYTES) as u32;
            self.monitor.record(&Request {
                arrival_ns: w.now_ns,
                op: OpType::Write,
                offset: w.offset,
                len: w.data.len() as u32,
            });
            self.logical_written += w.data.len() as u64;
            if let Some(run) = self.sd.on_write(start, blocks, w.now_ns) {
                let bytes = std::mem::take(&mut self.pending);
                self.seal_run(w.now_ns, run, bytes);
            }
            self.pending.extend_from_slice(w.data);
        }
        self.drain_sealed()
    }

    /// Register a file-type hint for the byte range `[offset, offset+len)`
    /// (4 KiB-aligned). An upper layer that knows the content type of a
    /// range uses this to constrain EDC's codec choice — the paper's §VI
    /// future work #1.
    pub fn set_hint(&mut self, offset: u64, len: u64, hint: FileTypeHint) {
        assert!(offset.is_multiple_of(BLOCK_BYTES) && len.is_multiple_of(BLOCK_BYTES), "hint range must be aligned");
        self.hints.set(offset / BLOCK_BYTES, len / BLOCK_BYTES, hint);
    }

    /// Force-flush the buffered run (timeout, shutdown).
    pub fn flush(&mut self, now_ns: u64) -> Option<WriteResult> {
        self.flush_all(now_ns).pop()
    }

    /// Drain everything: the run buffered in the sequentiality detector
    /// (if any) plus all sealed-but-unstored runs, compressing across the
    /// configured workers. Returns one result per stored run, in order.
    pub fn flush_all(&mut self, now_ns: u64) -> Vec<WriteResult> {
        if let Some(run) = self.sd.drain() {
            let bytes = std::mem::take(&mut self.pending);
            self.seal_run(now_ns, run, bytes);
        }
        self.drain_sealed()
    }

    /// Read `len` bytes at `offset` (both 4 KiB-aligned). Unwritten blocks
    /// read as zeroes, as on a real device.
    pub fn read(&mut self, now_ns: u64, offset: u64, len: u64) -> Result<Vec<u8>, ReadError> {
        if !offset.is_multiple_of(BLOCK_BYTES) || !len.is_multiple_of(BLOCK_BYTES) {
            return Err(ReadError::Unaligned);
        }
        self.monitor.record(&Request {
            arrival_ns: now_ns,
            op: OpType::Read,
            offset,
            len: len as u32,
        });
        // Reads break write sequentiality: flush first (paper §III-E).
        if self.sd.has_pending() {
            let run = self.sd.on_read().expect("pending checked");
            let bytes = std::mem::take(&mut self.pending);
            self.seal_run(now_ns, run, bytes);
        }
        self.drain_sealed();
        let mut out = vec![0u8; len as usize];
        let start = offset / BLOCK_BYTES;
        let blocks = len / BLOCK_BYTES;
        let bb = BLOCK_BYTES as usize;
        // Walk block by block, consulting each block's OWN mapping entry —
        // a neighbouring block may belong to an older run that still covers
        // this block's address range, and copying from that run would
        // resurrect superseded data.
        //
        // Write-through runs are copied straight out of the device image
        // (their payload IS the raw bytes — no decompression, no cache).
        // Compressed runs are served from the decompressed-run LRU when
        // possible; when the cache is disabled, a local memo still avoids
        // re-decoding a run shared by consecutive blocks.
        let mut verified_off = u64::MAX; // write-through run already checksummed
        let mut local_off = u64::MAX; // run held in `local_run` (cache disabled)
        let mut local_run: Vec<u8> = Vec::new();
        for b in start..start + blocks {
            let Some(entry) = self.map.get(b) else {
                continue;
            };
            let src = ((b - entry.run_start) * BLOCK_BYTES) as usize;
            let dst = ((b - start) * BLOCK_BYTES) as usize;
            if entry.tag == CodecId::None {
                if verified_off != entry.device_offset {
                    self.verify_checksum(&entry)?;
                    verified_off = entry.device_offset;
                }
                let at = entry.device_offset as usize + src;
                out[dst..dst + bb].copy_from_slice(&self.device[at..at + bb]);
                continue;
            }
            if local_off == entry.device_offset {
                out[dst..dst + bb].copy_from_slice(&local_run[src..src + bb]);
                continue;
            }
            if let Some(run) = self.cache.lookup(entry.device_offset) {
                out[dst..dst + bb].copy_from_slice(&run[src..src + bb]);
                continue;
            }
            let run = self.decompress_run(&entry)?;
            out[dst..dst + bb].copy_from_slice(&run[src..src + bb]);
            if self.cache.enabled() {
                self.cache.insert(entry.device_offset, run);
                local_off = u64::MAX;
            } else {
                local_off = entry.device_offset;
                local_run = run;
            }
        }
        Ok(out)
    }

    /// Check a stored payload against its mapping-entry checksum. Catches
    /// silent corruption that would otherwise decode "successfully" to
    /// wrong bytes (or, written through, be returned verbatim).
    fn verify_checksum(&self, entry: &MappingEntry) -> Result<(), ReadError> {
        let off = entry.device_offset as usize;
        let payload = &self.device[off..off + entry.compressed_bytes as usize];
        if checksum64(payload, entry.run_start) != entry.checksum {
            return Err(ReadError::ChecksumMismatch { run_start: entry.run_start });
        }
        Ok(())
    }

    /// Verify and decompress a compressed run's payload from the device
    /// image. Callers handle `CodecId::None` themselves (the payload is
    /// the raw data; copying it out wholesale would be a wasted
    /// allocation).
    fn decompress_run(&self, entry: &MappingEntry) -> Result<Vec<u8>, ReadError> {
        self.verify_checksum(entry)?;
        let off = entry.device_offset as usize;
        let payload = &self.device[off..off + entry.compressed_bytes as usize];
        let original = (u64::from(entry.run_blocks) * BLOCK_BYTES) as usize;
        let codec = codec_by_id(entry.tag).expect("caller handles write-through");
        codec.decompress(payload, original).map_err(ReadError::Corrupt)
    }

    /// The decision half of the pipeline: hint → estimate → select. Runs
    /// at the moment the flush trigger fires, against the monitor state of
    /// that instant, so the chosen codec is exactly the serial path's.
    /// Compression itself is deferred to the drain.
    fn seal_run(&mut self, now_ns: u64, run: MergedRun, bytes: Vec<u8>) {
        debug_assert_eq!(bytes.len() as u64, run.bytes(), "SD buffer out of sync");
        let hint = self.hints.lookup(run.start_block);
        // 0. A semantic hint can settle the question without sampling.
        let codec = if hint.is_some_and(FileTypeHint::settles_compressibility) {
            CodecId::None
        } else if self.estimator.is_incompressible(&bytes) {
            // 1. Sampling compressibility check.
            CodecId::None
        } else {
            // 2. Intensity ladder, constrained by any hint.
            let choice = self.selector.select(self.monitor.calculated_iops(now_ns));
            hint.map_or(choice, |h| h.constrain(choice))
        };
        self.sealed.push(SealedRun { run, bytes, codec });
    }

    /// The storage half: compress every sealed run (parallel when
    /// configured), then allocate + store + map serially in seal order.
    fn drain_sealed(&mut self) -> Vec<WriteResult> {
        if self.sealed.is_empty() {
            return Vec::new();
        }
        let sealed = std::mem::take(&mut self.sealed);
        // Phase 1: compression, the CPU-heavy pure part, fanned across
        // workers. Each job writes into a scratch buffer recycled from
        // previous drains, so the steady state performs no output
        // allocations at all.
        let n_jobs = sealed.iter().filter(|s| s.codec != CodecId::None).count();
        while self.scratch.len() < n_jobs {
            self.scratch.push(Vec::new());
        }
        let mut bufs = self.scratch.split_off(self.scratch.len() - n_jobs);
        {
            let mut work: Vec<(CodecId, &[u8], &mut Vec<u8>)> = sealed
                .iter()
                .filter(|s| s.codec != CodecId::None)
                .zip(bufs.iter_mut())
                .map(|(s, buf)| (s.codec, s.bytes.as_slice(), buf))
                .collect();
            let workers = self.config.workers.max(1).min(work.len());
            if workers <= 1 {
                for (codec, data, out) in work.iter_mut() {
                    codec_by_id(*codec).expect("sealed with a real codec").compress_into(data, out);
                }
            } else {
                // Contiguous chunks keep the scatter trivially
                // order-preserving: every job owns its own output buffer.
                let per_worker = work.len().div_ceil(workers);
                std::thread::scope(|scope| {
                    for part in work.chunks_mut(per_worker) {
                        scope.spawn(move || {
                            for (codec, data, out) in part.iter_mut() {
                                codec_by_id(*codec)
                                    .expect("sealed with a real codec")
                                    .compress_into(data, out);
                            }
                        });
                    }
                });
            }
        }
        // Phase 2: allocation, device write, mapping — stateful, applied
        // serially in seal order, which makes the whole drain equivalent
        // to processing each run at its seal point.
        let mut results = Vec::with_capacity(sealed.len());
        let mut buf_idx = 0usize;
        for s in &sealed {
            let comp = if s.codec == CodecId::None {
                None
            } else {
                let b = &bufs[buf_idx];
                buf_idx += 1;
                Some(b)
            };
            let comp_len = comp.map_or(s.bytes.len(), |b| b.len()) as u64;
            // Quantized allocation (with the 75 % fallback).
            let prev = self
                .map
                .get(s.run.start_block)
                .filter(|e| e.run_start == s.run.start_block && e.run_blocks == s.run.blocks);
            let placement =
                self.allocator.place(s.bytes.len() as u64, comp_len, prev.map(|e| e.stored_bytes));
            let (tag, payload): (CodecId, &[u8]) = if placement.compressed {
                (s.codec, comp.expect("compressed placement implies a codec"))
            } else {
                (CodecId::None, &s.bytes)
            };
            // Slot allocation + device write. The slot is referenced by
            // every block of the run and frees only when all are superseded.
            let device_offset = self.slots.alloc_run(placement.allocated_bytes, s.run.blocks);
            let off = device_offset as usize;
            self.device[off..off + payload.len()].copy_from_slice(payload);
            self.physical_written += placement.allocated_bytes;
            // Mapping update; release superseded runs and drop their
            // cached decompressions — a later read must never see them.
            let entry = MappingEntry {
                tag,
                run_start: s.run.start_block,
                run_blocks: s.run.blocks,
                device_offset,
                stored_bytes: placement.allocated_bytes,
                compressed_bytes: payload.len() as u64,
                checksum: checksum64(payload, s.run.start_block),
            };
            for old in self.map.insert_run(entry) {
                self.slots.release_block_ref(old.device_offset);
                self.cache.invalidate(old.device_offset);
            }
            results.push(WriteResult {
                start_block: s.run.start_block,
                blocks: s.run.blocks,
                tag,
                payload_bytes: payload.len() as u64,
                allocated_bytes: placement.allocated_bytes,
            });
        }
        // Return the scratch buffers (capacity intact) for the next drain.
        self.scratch.extend(bufs.into_iter().map(|mut b| {
            b.clear();
            b
        }));
        results
    }

    /// Cumulative logical bytes accepted.
    pub fn logical_written(&self) -> u64 {
        self.logical_written
    }

    /// Cumulative flash bytes allocated.
    pub fn physical_written(&self) -> u64 {
        self.physical_written
    }

    /// The paper's compression ratio over everything written so far.
    pub fn compression_ratio(&self) -> f64 {
        if self.physical_written == 0 {
            return 1.0;
        }
        self.logical_written as f64 / self.physical_written as f64
    }

    /// Allocator statistics.
    pub fn alloc_stats(&self) -> AllocStats {
        self.allocator.stats()
    }

    /// Decompressed-run read-cache statistics (all zeroes when disabled).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The raw device image. Two pipelines fed the same writes must hold
    /// identical images regardless of worker count — benchmarks and tests
    /// assert the batched path against the serial one with this.
    pub fn device_image(&self) -> &[u8] {
        &self.device
    }

    /// The active configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn text_block(tag: u8) -> Vec<u8> {
        format!("block {tag} elastic compression pipeline content ")
            .into_bytes()
            .into_iter()
            .cycle()
            .take(4096)
            .collect()
    }

    fn random_block(seed: u64) -> Vec<u8> {
        let mut x = seed | 1;
        (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 48) as u8
            })
            .collect()
    }

    fn pipeline() -> EdcPipeline {
        EdcPipeline::new(4 << 20, PipelineConfig::default())
    }

    #[test]
    fn write_read_round_trip() {
        let mut p = pipeline();
        let data = text_block(1);
        p.write(0, 0, &data);
        p.flush(1_000);
        assert_eq!(p.read(2_000, 0, 4096).unwrap(), data);
    }

    #[test]
    fn read_flushes_pending_writes() {
        let mut p = pipeline();
        let data = text_block(2);
        p.write(0, 8192, &data);
        // No explicit flush: the read must still see the data.
        assert_eq!(p.read(1_000, 8192, 4096).unwrap(), data);
    }

    #[test]
    fn unwritten_blocks_read_zero() {
        let mut p = pipeline();
        assert_eq!(p.read(0, 0, 8192).unwrap(), vec![0u8; 8192]);
    }

    #[test]
    fn sequential_writes_merge_into_one_run() {
        let mut p = pipeline();
        let a = text_block(3);
        let b = text_block(4);
        let c = text_block(5);
        assert!(p.write(0, 0, &a).is_none());
        assert!(p.write(10, 4096, &b).is_none());
        assert!(p.write(20, 8192, &c).is_none());
        let r = p.flush(30).expect("flush merged run");
        assert_eq!(r.blocks, 3);
        assert_eq!(r.start_block, 0);
        // Round trip across the merged run.
        let all = p.read(40, 0, 3 * 4096).unwrap();
        assert_eq!(&all[..4096], &a[..]);
        assert_eq!(&all[4096..8192], &b[..]);
        assert_eq!(&all[8192..], &c[..]);
    }

    #[test]
    fn compressible_data_is_compressed_and_saves_space() {
        let mut p = pipeline();
        for i in 0..32u64 {
            p.write(i, i * 4096, &text_block(i as u8));
        }
        p.flush(100);
        assert!(p.compression_ratio() > 1.5, "ratio {}", p.compression_ratio());
    }

    #[test]
    fn incompressible_data_written_through() {
        let mut p = pipeline();
        let r = {
            p.write(0, 0, &random_block(42));
            p.flush(1).unwrap()
        };
        assert_eq!(r.tag, CodecId::None);
        assert_eq!(r.allocated_bytes, 4096);
        assert_eq!(p.read(2, 0, 4096).unwrap(), random_block(42));
    }

    #[test]
    fn high_intensity_skips_compression() {
        let mut p = pipeline();
        // 20k writes/s sustained: the 1 s monitor window exceeds the
        // 4 000 calc-IOPS skip threshold within 200 ms.
        let mut last = None;
        for i in 0..6000u64 {
            let off = (i % 400) * 3 * 4096; // non-contiguous: flush each time
            last = p.write(i * 50_000, off, &text_block(9)).or(last);
        }
        let r = last.expect("flushes happened");
        assert_eq!(r.tag, CodecId::None, "burst writes must skip compression");
    }

    #[test]
    fn idle_writes_use_strong_codec() {
        let mut p = pipeline();
        // One write every 100 ms: ~10 calculated IOPS → Gzip band.
        let mut results = Vec::new();
        for i in 0..20u64 {
            if let Some(r) = p.write(i * 100_000_000, (i * 5) * 4096, &text_block(7)) {
                results.push(r);
            }
        }
        if let Some(r) = p.flush(20 * 100_000_000) { results.push(r) }
        assert!(
            results.iter().any(|r| r.tag == CodecId::Deflate),
            "idle writes should pick Gzip, got {:?}",
            results.iter().map(|r| r.tag).collect::<Vec<_>>()
        );
    }

    #[test]
    fn overwrite_returns_latest_data() {
        let mut p = pipeline();
        let v1 = text_block(1);
        let v2 = random_block(77);
        p.write(0, 4096, &v1);
        p.flush(1);
        p.write(2, 4096, &v2);
        p.flush(3);
        assert_eq!(p.read(4, 4096, 4096).unwrap(), v2);
    }

    #[test]
    fn partial_read_of_merged_run() {
        let mut p = pipeline();
        let a = text_block(11);
        let b = text_block(12);
        p.write(0, 0, &a);
        p.write(1, 4096, &b);
        p.flush(2);
        // Read only the second block of the two-block run.
        assert_eq!(p.read(3, 4096, 4096).unwrap(), b);
    }

    #[test]
    fn multi_block_write_round_trip() {
        let mut p = pipeline();
        let mut big = text_block(20);
        big.extend(text_block(21));
        big.extend(random_block(5));
        big.extend(text_block(22));
        p.write(0, 16384, &big);
        p.flush(1);
        assert_eq!(p.read(2, 16384, big.len() as u64).unwrap(), big);
    }

    #[test]
    #[should_panic(expected = "4 KiB aligned")]
    fn unaligned_write_rejected() {
        let mut p = pipeline();
        p.write(0, 100, &text_block(0));
    }

    #[test]
    fn unaligned_read_errors() {
        let mut p = pipeline();
        assert!(matches!(p.read(0, 100, 4096), Err(ReadError::Unaligned)));
        assert!(matches!(p.read(0, 0, 100), Err(ReadError::Unaligned)));
    }

    #[test]
    fn precompressed_hint_skips_compression_of_compressible_data() {
        let mut p = pipeline();
        p.set_hint(0, 8192, FileTypeHint::Precompressed);
        let data = text_block(40); // would normally compress well
        p.write(0, 0, &data);
        let r = p.flush(1).unwrap();
        assert_eq!(r.tag, CodecId::None, "hint must veto compression");
        assert_eq!(p.read(2, 0, 4096).unwrap(), data);
    }

    #[test]
    fn database_hint_caps_codec_at_fast_tier() {
        let mut p = pipeline();
        p.set_hint(0, 4096, FileTypeHint::Database);
        // Slow writes → ladder would pick the strong codec; the hint caps it.
        p.write(0, 0, &text_block(41));
        let r = p.flush(100_000_000).unwrap();
        assert_eq!(r.tag, CodecId::Lzf, "database hint caps at Lzf, got {:?}", r.tag);
    }

    #[test]
    fn unhinted_ranges_unaffected() {
        let mut p = pipeline();
        p.set_hint(1 << 20, 4096, FileTypeHint::Precompressed);
        p.write(0, 0, &text_block(42));
        let r = p.flush(100_000_000).unwrap();
        assert_ne!(r.tag, CodecId::None, "hint elsewhere must not leak");
    }

    #[test]
    fn corrupted_device_image_detected_by_checksum() {
        let mut p = pipeline();
        let data = text_block(33);
        p.write(0, 0, &data);
        p.flush(1);
        // Flip one byte of the stored payload behind the pipeline's back.
        p.device[0] ^= 0x01;
        match p.read(2, 0, 4096) {
            Err(ReadError::ChecksumMismatch { run_start }) => assert_eq!(run_start, 0),
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn partial_overwrite_of_merged_run_reads_fresh_data() {
        // Regression: block 1's entry must win over the older merged run
        // (blocks 0..3) that still covers its address range.
        let mut p = pipeline();
        let old: Vec<Vec<u8>> = (0..4).map(|i| text_block(50 + i)).collect();
        for (i, blockdata) in old.iter().enumerate() {
            p.write(i as u64, i as u64 * 4096, blockdata);
        }
        p.flush(10); // one merged 4-block run
        let fresh = random_block(4242);
        p.write(20, 4096, &fresh); // overwrite only block 1
        p.flush(30);
        // A read spanning the whole range must mix old and new correctly.
        let got = p.read(40, 0, 4 * 4096).unwrap();
        assert_eq!(&got[..4096], &old[0][..], "block 0 from the old run");
        assert_eq!(&got[4096..8192], &fresh[..], "block 1 must be the overwrite");
        assert_eq!(&got[8192..12288], &old[2][..], "block 2 from the old run");
        assert_eq!(&got[12288..], &old[3][..], "block 3 from the old run");
    }

    #[test]
    fn mapping_tags_recorded() {
        let mut p = pipeline();
        p.write(0, 0, &text_block(1));
        let r = p.flush(1).unwrap();
        assert_ne!(r.tag, CodecId::None, "slow text write should compress");
        assert!(r.payload_bytes < 4096);
        assert!(r.allocated_bytes <= 4096);
    }

    #[test]
    fn write_batch_flushes_multiple_runs() {
        let mut p = pipeline();
        let blocks: Vec<Vec<u8>> = (0..8).map(|i| text_block(60 + i)).collect();
        // Non-contiguous offsets: every write after the first seals the
        // previous single-block run.
        let batch: Vec<BatchWrite<'_>> = blocks
            .iter()
            .enumerate()
            .map(|(i, data)| BatchWrite {
                now_ns: i as u64,
                offset: (i as u64 * 3) * 4096,
                data,
            })
            .collect();
        let mut results = p.write_batch(&batch);
        results.extend(p.flush_all(100));
        assert_eq!(results.len(), 8);
        for (i, data) in blocks.iter().enumerate() {
            assert_eq!(&p.read(200 + i as u64, (i as u64 * 3) * 4096, 4096).unwrap(), data);
        }
    }

    #[test]
    fn batched_multicore_store_is_bit_identical_to_serial() {
        let make = |workers: usize| {
            EdcPipeline::new(8 << 20, PipelineConfig { workers, ..PipelineConfig::default() })
        };
        let blocks: Vec<Vec<u8>> = (0..64)
            .map(|i| if i % 5 == 4 { random_block(i) } else { text_block(i as u8) })
            .collect();
        let batch: Vec<BatchWrite<'_>> = blocks
            .iter()
            .enumerate()
            .map(|(i, data)| BatchWrite {
                now_ns: i as u64 * 1000,
                offset: (i as u64 * 3) * 4096,
                data,
            })
            .collect();

        // Serial reference: one write at a time, one worker.
        let mut serial = make(1);
        for w in &batch {
            serial.write(w.now_ns, w.offset, w.data);
        }
        serial.flush(1_000_000);

        // Batched, four workers, one call.
        let mut batched = make(4);
        batched.write_batch(&batch);
        batched.flush_all(1_000_000);

        assert_eq!(serial.device, batched.device, "device images must be bit-identical");
        assert_eq!(serial.physical_written(), batched.physical_written());
        assert_eq!(serial.logical_written(), batched.logical_written());
    }

    #[test]
    fn repeated_reads_hit_run_cache() {
        let mut p = pipeline();
        let data = text_block(70);
        p.write(0, 0, &data);
        p.flush(1);
        assert_eq!(p.read(2, 0, 4096).unwrap(), data); // miss, fills cache
        assert_eq!(p.read(3, 0, 4096).unwrap(), data); // hit
        let s = p.cache_stats();
        assert!(s.hits > 0, "second read must be served from cache, stats {s:?}");
        assert!(s.hit_rate() > 0.0);
    }

    #[test]
    fn partial_overwrite_invalidates_cached_run() {
        // Mirror of partial_overwrite_of_merged_run_reads_fresh_data with
        // the read cache active: the overwrite must drop the cached
        // decompressed run so later reads never see stale block 1 bytes.
        let mut p = pipeline();
        assert!(p.config().cache_runs > 0, "cache enabled by default");
        let old: Vec<Vec<u8>> = (0..4).map(|i| text_block(80 + i)).collect();
        for (i, blockdata) in old.iter().enumerate() {
            p.write(i as u64, i as u64 * 4096, blockdata);
        }
        p.flush(10); // one merged 4-block run
        // Populate the cache with the merged run's decompression.
        let first = p.read(20, 0, 4 * 4096).unwrap();
        assert_eq!(&first[4096..8192], &old[1][..]);
        assert!(p.cache_stats().misses > 0, "first read fills the cache");
        let fresh = random_block(777);
        p.write(30, 4096, &fresh); // overwrite only block 1
        p.flush(40);
        assert!(
            p.cache_stats().invalidations > 0,
            "overwrite must invalidate the cached run, stats {:?}",
            p.cache_stats()
        );
        let got = p.read(50, 0, 4 * 4096).unwrap();
        assert_eq!(&got[..4096], &old[0][..], "block 0 from the old run");
        assert_eq!(&got[4096..8192], &fresh[..], "block 1 must be the overwrite");
        assert_eq!(&got[8192..12288], &old[2][..], "block 2 from the old run");
        assert_eq!(&got[12288..], &old[3][..], "block 3 from the old run");
    }

    #[test]
    fn disabled_cache_reads_still_correct() {
        let mut p = EdcPipeline::new(
            4 << 20,
            PipelineConfig { cache_runs: 0, ..PipelineConfig::default() },
        );
        let a = text_block(90);
        let b = text_block(91);
        p.write(0, 0, &a);
        p.write(1, 4096, &b);
        p.flush(2);
        let got = p.read(3, 0, 8192).unwrap();
        assert_eq!(&got[..4096], &a[..]);
        assert_eq!(&got[4096..], &b[..]);
        let s = p.cache_stats();
        assert_eq!((s.hits, s.misses), (0, 0), "disabled cache records nothing");
    }
}
