//! io_uring-style submission/completion ring over [`ShardedPipeline`]
//! (DESIGN.md §16).
//!
//! The blocking front-ends cap concurrency at the caller's thread count:
//! every in-flight op burns one OS thread parked inside a shard lock.
//! This module decouples *submission* from *execution* the way a
//! compression-capable storage device decouples host I/O from device-side
//! codec work: callers enqueue ops on fixed-depth per-shard submission
//! queues and immediately move on; one drainer thread per shard takes the
//! whole queue in a single lock acquisition (a batched doorbell),
//! dispatches it against the shard's pipeline — coalescing adjacent
//! writes into one
//! [`EdcPipeline::write_batch_indexed`](crate::pipeline::EdcPipeline::write_batch_indexed)
//! call — and posts
//! typed completion records group by group, as each lands, so waiters
//! resubmit while the rest of the batch is still dispatching. Callers
//! harvest completions with
//! [`Ring::wait`] / [`Ring::try_reap`] / [`Ring::drain`]. Queue depth,
//! not thread count, now drives device saturation: a handful of
//! submitter threads keep every shard and its dwell-modelled media busy.
//!
//! ## Backpressure
//!
//! Each shard's ring holds at most [`RingConfig::depth`] ops that have
//! been submitted but not yet reaped. A full ring rejects the submission
//! with the typed [`RingError::Full`] — never a silent drop, never a
//! block — so the caller decides whether to reap, retry or shed load.
//! Because reaping frees the slot, the completion side can never
//! overflow.
//!
//! ## Ordering contract
//!
//! Per shard, ops execute and complete in submission order (one drainer,
//! FIFO queue, in-order completion posting) — completions are
//! journal-ordered per shard. Across shards there is no ordering, exactly
//! like the blocking sharded front-end. Ops are validated at submission:
//! only data-plane ops ([`Op::Write`], [`Op::Read`]) whose footprint
//! lies within a single extent (hence a single shard) are accepted;
//! control-plane ops stay on the blocking [`Store`](crate::store::Store)
//! surface, to be used while the ring is quiescent.
//!
//! ## Determinism and record/replay
//!
//! A drainer serializes its shard's ops in submission order, and ops on
//! different shards touch disjoint state, so any interleaving of drains
//! produces the same per-shard state trajectory as dispatching the ops
//! one at a time — ring reads are bit-identical to the blocking path's,
//! including under injected faults and mid-drain power cuts
//! (`tests/proptest_ring.rs` proves it). [`Ring::serve_recorded`] wires a
//! [`Recorder`] into the drainers: every op is dispatched individually
//! (no coalescing, so error attribution under power cuts matches the
//! serial path exactly) and recorded in drain order, yielding a `.edcrr`
//! log that replays bit-exactly through the blocking `Store` path.
//!
//! ## Cooperative draining
//!
//! [`Ring::wait`] does not just park: if the awaited op is the *only* op
//! in its shard's submission queue and no drainer is active on that
//! shard, the waiter dispatches it on its own thread. At queue depth 1
//! this collapses the ring to the blocking path's latency (no handoff,
//! no wakeup) — the QD=1 sweep point stays within 10% of the blocking
//! single-thread throughput. The help is deliberately that narrow: at
//! depth, draining a whole dwell-laden batch on the waiter's thread
//! would starve its other in-flight ops, so deep waiters park and the
//! drainers do all the work.

use crate::pipeline::{BatchWrite, WriteResult};
use crate::record::Recorder;
use crate::scheme::BLOCK_BYTES;
use crate::shard::ShardedPipeline;
use crate::store::{Op, OpOutput};
use crate::telemetry::{Sample, TieredSeries};
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Instant;

/// Cap on how many adjacent writes one dispatch group coalesces. A group
/// holds its shard for the whole `write_batch` call and its riders'
/// completions post only when the group lands, so the cap bounds
/// completion staleness under deep queues while still amortizing the
/// shard lock and drain machinery across many writes.
const MAX_COALESCE: usize = 16;

/// Configuration of a [`Ring`].
#[derive(Debug, Clone, Copy)]
pub struct RingConfig {
    /// Maximum submitted-but-not-reaped ops per shard. A shard whose
    /// ring holds `depth` unreaped ops rejects further submissions with
    /// [`RingError::Full`].
    pub depth: usize,
    /// Expected shard count, as a configuration cross-check: `0` (the
    /// default) follows the store; any other value must equal the
    /// store's [`ShardedPipeline::shard_count`] or
    /// [`Ring::serve`] panics.
    pub shards: usize,
}

impl Default for RingConfig {
    fn default() -> Self {
        RingConfig { depth: 64, shards: 0 }
    }
}

/// Typed submission failure. Submission never blocks and never silently
/// drops: every rejected op surfaces as one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RingError {
    /// The target shard's ring already holds [`RingConfig::depth`]
    /// unreaped ops; reap completions and retry.
    Full,
    /// The ring is shutting down (the serve closure returned).
    Shutdown,
    /// Offset or length not whole 4 KiB-aligned blocks.
    Unaligned,
    /// The op's footprint crosses an extent boundary and would fan out
    /// to more than one shard; split it at extent boundaries first.
    CrossShard,
    /// Only data-plane ops (`Write`, `Read`) ride the ring; the named
    /// control-plane op belongs on the blocking `Store` surface.
    Unsupported(&'static str),
    /// The ticket names a completion that was never issued or was
    /// already reaped.
    UnknownTicket,
}

impl std::fmt::Display for RingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RingError::Full => write!(f, "ring full: reap completions before resubmitting"),
            RingError::Shutdown => write!(f, "ring is shutting down"),
            RingError::Unaligned => write!(f, "op must cover whole 4 KiB-aligned blocks"),
            RingError::CrossShard => {
                write!(f, "op footprint spans shards; split at extent boundaries")
            }
            RingError::Unsupported(kind) => {
                write!(f, "op `{kind}` is control-plane; use the blocking Store surface")
            }
            RingError::UnknownTicket => write!(f, "ticket unknown or already reaped"),
        }
    }
}

impl std::error::Error for RingError {}

/// Handle to one submitted op: names the shard that executes it and its
/// per-shard sequence number. Redeem it with [`Ring::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ticket {
    shard: u32,
    seq: u64,
}

impl Ticket {
    /// Shard the op was routed to.
    pub fn shard(&self) -> usize {
        self.shard as usize
    }

    /// Per-shard submission sequence number (0-based, gap-free).
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

/// Monotonic ring counters, snapshot by [`Ring::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RingStats {
    /// Ops accepted by [`Ring::submit`].
    pub submitted: u64,
    /// Ops dispatched and posted to a completion queue.
    pub completed: u64,
    /// Submissions rejected with [`RingError::Full`].
    pub rejected_full: u64,
    /// Batches taken off submission queues (doorbell rings).
    pub drained_batches: u64,
    /// Groups of ≥ 2 adjacent writes dispatched as one `write_batch`.
    pub coalesced_groups: u64,
    /// Writes that rode a coalesced group.
    pub coalesced_writes: u64,
    /// Largest single drained batch.
    pub max_batch: u64,
}

/// One submitted-but-not-executed op.
struct Pending {
    seq: u64,
    now_ns: u64,
    op: Op,
    submitted_at: Instant,
}

/// Mutable half of one shard's ring.
struct QueueState {
    /// Submission queue, FIFO.
    sq: VecDeque<Pending>,
    /// Completion queue, FIFO in execution (= submission) order.
    cq: VecDeque<(u64, OpOutput)>,
    /// Seqs of the batch currently being dispatched.
    executing: Vec<u64>,
    /// Submitted-but-not-reaped ops (`sq` + `executing` + `cq`); the
    /// value [`RingConfig::depth`] bounds.
    occupied: usize,
    /// Next submission sequence number.
    next_seq: u64,
    /// A drainer (or a helping waiter) owns dispatch right now.
    draining: bool,
    /// Seqs currently parked in [`Ring::wait`]: a posted group rings
    /// `completed` only when it delivers one of these (or at batch end),
    /// so uncontested completions cost no wakeups.
    waiting: Vec<u64>,
    /// The serve closure returned; no further submissions.
    shutdown: bool,
}

struct ShardQueue {
    state: Mutex<QueueState>,
    /// Drainers park here; rung on submission and shutdown.
    doorbell: Condvar,
    /// Waiters park here; rung when a batch's completions post.
    completed: Condvar,
    /// Per-shard occupancy sampled at every batch take.
    occupancy: Mutex<TieredSeries>,
    /// Mean submit→completion latency (µs) per posted group.
    latency: Mutex<TieredSeries>,
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected_full: AtomicU64,
    drained_batches: AtomicU64,
    coalesced_groups: AtomicU64,
    coalesced_writes: AtomicU64,
    max_batch: AtomicU64,
}

/// A fixed-depth submission/completion ring over a [`ShardedPipeline`].
///
/// Create one with [`Ring::serve`] (or [`Ring::serve_recorded`]), which
/// scopes the drainer threads to a closure:
///
/// ```
/// use edc_core::ring::{Ring, RingConfig};
/// use edc_core::shard::{ShardConfig, ShardedPipeline};
/// use edc_core::store::{Op, OpOutput};
///
/// let store = ShardedPipeline::new(1 << 20, ShardConfig::default());
/// let out = Ring::serve(&store, RingConfig::default(), |ring| {
///     let t = ring.submit(0, Op::Write { offset: 0, data: vec![7u8; 4096] }).unwrap();
///     ring.wait(t).unwrap();
///     let t = ring.submit(1, Op::Read { offset: 0, len: 4096 }).unwrap();
///     ring.wait(t).unwrap()
/// });
/// assert!(matches!(out, OpOutput::Read { len: 4096, .. }));
/// ```
pub struct Ring<'a> {
    store: &'a ShardedPipeline,
    queues: Vec<ShardQueue>,
    depth: usize,
    recorder: Option<&'a Mutex<Recorder>>,
    counters: Counters,
    reap_cursor: AtomicU64,
    started: Instant,
}

impl<'a> Ring<'a> {
    /// Run `f` against a live ring over `store`: spawn one drainer per
    /// shard (scoped threads — no allocation outlives the call), call
    /// `f`, then shut the drainers down and join them. Completions not
    /// reaped before `f` returns are discarded with the ring.
    ///
    /// # Panics
    ///
    /// Panics if `config.depth == 0`, or if `config.shards` is nonzero
    /// and differs from the store's shard count. A panic inside `f` is
    /// resurfaced after the drainers shut down cleanly.
    pub fn serve<T>(
        store: &ShardedPipeline,
        config: RingConfig,
        f: impl FnOnce(&Ring<'_>) -> T,
    ) -> T {
        Self::serve_with(store, config, None, f)
    }

    /// [`Ring::serve`] with a [`Recorder`] wired into the drainers:
    /// every op is dispatched individually (no write coalescing, so
    /// error attribution under mid-drain power cuts matches the serial
    /// path exactly) and recorded in drain order. The resulting log
    /// replays bit-exactly through the blocking `Store` path.
    pub fn serve_recorded<T>(
        store: &ShardedPipeline,
        config: RingConfig,
        recorder: &Mutex<Recorder>,
        f: impl FnOnce(&Ring<'_>) -> T,
    ) -> T {
        Self::serve_with(store, config, Some(recorder), f)
    }

    fn serve_with<T>(
        store: &ShardedPipeline,
        config: RingConfig,
        recorder: Option<&Mutex<Recorder>>,
        f: impl FnOnce(&Ring<'_>) -> T,
    ) -> T {
        assert!(config.depth >= 1, "ring depth must be at least 1");
        assert!(
            config.shards == 0 || config.shards == store.shard_count(),
            "RingConfig.shards ({}) disagrees with the store ({})",
            config.shards,
            store.shard_count()
        );
        let ring = Ring {
            store,
            queues: (0..store.shard_count())
                .map(|_| ShardQueue {
                    state: Mutex::new(QueueState {
                        sq: VecDeque::new(),
                        cq: VecDeque::new(),
                        executing: Vec::new(),
                        occupied: 0,
                        next_seq: 0,
                        draining: false,
                        waiting: Vec::new(),
                        shutdown: false,
                    }),
                    doorbell: Condvar::new(),
                    completed: Condvar::new(),
                    occupancy: Mutex::new(TieredSeries::new(32, 4)),
                    latency: Mutex::new(TieredSeries::new(32, 4)),
                })
                .collect(),
            depth: config.depth,
            recorder,
            counters: Counters::default(),
            reap_cursor: AtomicU64::new(0),
            started: Instant::now(),
        };
        let out = std::thread::scope(|sc| {
            for s in 0..ring.queues.len() {
                let r = &ring;
                sc.spawn(move || r.drainer(s));
            }
            // A panicking `f` (a failed test assertion, say) must still
            // shut the drainers down, or the scope would join forever.
            let out = catch_unwind(AssertUnwindSafe(|| f(&ring)));
            ring.shutdown_all();
            out
        });
        match out {
            Ok(v) => v,
            Err(payload) => resume_unwind(payload),
        }
    }

    /// Number of shards (= submission queues).
    pub fn shard_count(&self) -> usize {
        self.queues.len()
    }

    /// Per-shard depth this ring was configured with.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Enqueue `op` for execution at time `now_ns` without blocking.
    /// Validation happens here: alignment, single-shard footprint,
    /// data-plane op kind, free ring capacity. The returned [`Ticket`]
    /// redeems the op's completion.
    pub fn submit(&self, now_ns: u64, op: Op) -> Result<Ticket, RingError> {
        let shard = self.route(&op)?;
        let q = &self.queues[shard];
        let mut st = q.state.lock().expect("ring poisoned");
        if st.shutdown {
            return Err(RingError::Shutdown);
        }
        if st.occupied >= self.depth {
            self.counters.rejected_full.fetch_add(1, Relaxed);
            return Err(RingError::Full);
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        st.occupied += 1;
        st.sq.push_back(Pending { seq, now_ns, op, submitted_at: Instant::now() });
        // A mid-batch drainer re-checks its queue at batch end (under
        // this same lock), so the doorbell only needs ringing when the
        // drainer may actually be parked.
        let drainer_parked = !st.draining;
        drop(st);
        if drainer_parked {
            q.doorbell.notify_one();
        }
        self.counters.submitted.fetch_add(1, Relaxed);
        Ok(Ticket { shard: shard as u32, seq })
    }

    /// Block until `ticket`'s op completes and return its output,
    /// consuming the completion (a second wait on the same ticket
    /// returns [`RingError::UnknownTicket`]). If the op still sits in
    /// its submission queue and no drainer is active on that shard, the
    /// waiter drains the batch itself — see the module docs on
    /// cooperative draining.
    pub fn wait(&self, ticket: Ticket) -> Result<OpOutput, RingError> {
        let s = ticket.shard as usize;
        let q = self.queues.get(s).ok_or(RingError::UnknownTicket)?;
        let mut st = q.state.lock().expect("ring poisoned");
        loop {
            if let Some(i) = st.cq.iter().position(|(seq, _)| *seq == ticket.seq) {
                let (_, out) = st.cq.remove(i).expect("position just found");
                st.occupied -= 1;
                return Ok(out);
            }
            if ticket.seq >= st.next_seq {
                return Err(RingError::UnknownTicket);
            }
            let in_sq = st.sq.iter().any(|p| p.seq == ticket.seq);
            if !in_sq && !st.executing.contains(&ticket.seq) {
                // Issued, not queued, not executing, not completed:
                // already reaped.
                return Err(RingError::UnknownTicket);
            }
            // Cooperative draining, narrowly: only when the awaited op is
            // the *sole* queued op and no drainer is active — the QD=1
            // shape, where skipping the drainer hand-off is pure win. At
            // depth, helping would serialize a whole dwell-laden batch
            // onto this caller's thread and starve its other in-flight
            // ops, so deep waiters park instead.
            if in_sq && !st.draining && st.sq.len() == 1 {
                st = self.drain_batch(s, st);
                continue;
            }
            // Register interest so the drainer rings `completed` when
            // this seq posts (uncontested completions skip the wakeup).
            st.waiting.push(ticket.seq);
            st = q.completed.wait(st).expect("ring poisoned");
            st.waiting.retain(|w| *w != ticket.seq);
        }
    }

    /// Check `ticket` without blocking: `Ok(Some(out))` consumes the
    /// completion, `Ok(None)` means the op is still queued or executing,
    /// and [`RingError::UnknownTicket`] means it was never issued or was
    /// already reaped. A client multiplexing many in-flight tickets polls
    /// the whole window and blocks ([`Ring::wait`]) only when nothing has
    /// landed — reaping completions in *completion* order rather than
    /// submission order, which keeps every slot busy instead of
    /// head-of-line blocking on the oldest ticket's shard.
    pub fn poll(&self, ticket: Ticket) -> Result<Option<OpOutput>, RingError> {
        let s = ticket.shard as usize;
        let q = self.queues.get(s).ok_or(RingError::UnknownTicket)?;
        let mut st = q.state.lock().expect("ring poisoned");
        if let Some(i) = st.cq.iter().position(|(seq, _)| *seq == ticket.seq) {
            let (_, out) = st.cq.remove(i).expect("position just found");
            st.occupied -= 1;
            return Ok(Some(out));
        }
        if ticket.seq >= st.next_seq
            || (!st.sq.iter().any(|p| p.seq == ticket.seq)
                && !st.executing.contains(&ticket.seq))
        {
            return Err(RingError::UnknownTicket);
        }
        Ok(None)
    }

    /// Harvest one completion if any shard has one ready, without
    /// blocking. Rotates the starting shard so no queue starves.
    pub fn try_reap(&self) -> Option<(Ticket, OpOutput)> {
        let n = self.queues.len();
        let start = self.reap_cursor.fetch_add(1, Relaxed) as usize;
        for k in 0..n {
            let s = (start + k) % n;
            let mut st = self.queues[s].state.lock().expect("ring poisoned");
            if let Some((seq, out)) = st.cq.pop_front() {
                st.occupied -= 1;
                return Some((Ticket { shard: s as u32, seq }, out));
            }
        }
        None
    }

    /// Wait for every submitted op to complete and harvest all
    /// completions, per shard in completion (= submission) order. Ops
    /// submitted concurrently with the drain may or may not be included.
    pub fn drain(&self) -> Vec<(Ticket, OpOutput)> {
        let mut harvested = Vec::new();
        for s in 0..self.queues.len() {
            let q = &self.queues[s];
            let mut st = q.state.lock().expect("ring poisoned");
            loop {
                if !st.sq.is_empty() && !st.draining {
                    st = self.drain_batch(s, st);
                    continue;
                }
                if st.sq.is_empty() && !st.draining {
                    break;
                }
                st = q.completed.wait(st).expect("ring poisoned");
            }
            while let Some((seq, out)) = st.cq.pop_front() {
                st.occupied -= 1;
                harvested.push((Ticket { shard: s as u32, seq }, out));
            }
        }
        harvested
    }

    /// Snapshot the ring's monotonic counters.
    pub fn stats(&self) -> RingStats {
        RingStats {
            submitted: self.counters.submitted.load(Relaxed),
            completed: self.counters.completed.load(Relaxed),
            rejected_full: self.counters.rejected_full.load(Relaxed),
            drained_batches: self.counters.drained_batches.load(Relaxed),
            coalesced_groups: self.counters.coalesced_groups.load(Relaxed),
            coalesced_writes: self.counters.coalesced_writes.load(Relaxed),
            max_batch: self.counters.max_batch.load(Relaxed),
        }
    }

    /// Shard occupancy (submitted-but-not-reaped ops) sampled at every
    /// batch take, merged across shards in time order; time axis is
    /// nanoseconds since the ring started.
    pub fn occupancy_series(&self) -> Vec<Sample> {
        Self::merge_series(self.queues.iter().map(|q| &q.occupancy))
    }

    /// Mean submit→completion latency in microseconds per posted group,
    /// merged across shards in time order; time axis is nanoseconds
    /// since the ring started.
    pub fn latency_series(&self) -> Vec<Sample> {
        Self::merge_series(self.queues.iter().map(|q| &q.latency))
    }

    fn merge_series<'s>(parts: impl Iterator<Item = &'s Mutex<TieredSeries>>) -> Vec<Sample> {
        let mut all: Vec<Sample> =
            parts.flat_map(|m| m.lock().expect("ring poisoned").samples()).collect();
        all.sort_by_key(|p| p.t_ns);
        all
    }

    /// Validate `op` and resolve the single shard that executes it.
    fn route(&self, op: &Op) -> Result<usize, RingError> {
        let (offset, len) = match op {
            Op::Write { offset, data } => {
                if data.is_empty() {
                    return Err(RingError::Unaligned);
                }
                (*offset, data.len() as u64)
            }
            Op::Read { offset, len } => (*offset, *len),
            other => return Err(RingError::Unsupported(other.kind())),
        };
        if !offset.is_multiple_of(BLOCK_BYTES) || !len.is_multiple_of(BLOCK_BYTES) {
            return Err(RingError::Unaligned);
        }
        self.store.single_shard_of(offset, len).ok_or(RingError::CrossShard)
    }

    /// One drainer loop: park on the doorbell, take whole batches,
    /// dispatch, repeat until shutdown drains the queue dry.
    fn drainer(&self, s: usize) {
        let q = &self.queues[s];
        let mut st = q.state.lock().expect("ring poisoned");
        loop {
            if !st.sq.is_empty() && !st.draining {
                st = self.drain_batch(s, st);
                continue;
            }
            if st.shutdown && st.sq.is_empty() {
                return;
            }
            st = q.doorbell.wait(st).expect("ring poisoned");
        }
    }

    /// Take shard `s`'s entire submission queue in one lock acquisition,
    /// then dispatch it outside the lock group by group — a coalesced
    /// write group or a single read at a time — posting each group's
    /// completions (and waking waiters) the moment it lands. Incremental
    /// posting is what keeps deep queues from convoying: closed-loop
    /// submitters refill the queue while the rest of the batch is still
    /// dispatching, instead of stalling until the whole batch retires.
    /// Consumes the caller's guard; returns the re-acquired one.
    fn drain_batch<'g>(
        &'g self,
        s: usize,
        mut st: MutexGuard<'g, QueueState>,
    ) -> MutexGuard<'g, QueueState> {
        debug_assert!(!st.draining, "one dispatcher per shard at a time");
        let batch: Vec<Pending> = st.sq.drain(..).collect();
        debug_assert!(!batch.is_empty(), "doorbell rung on an empty queue");
        st.draining = true;
        st.executing = batch.iter().map(|p| p.seq).collect();
        let occupied = st.occupied;
        drop(st);

        self.counters.drained_batches.fetch_add(1, Relaxed);
        self.counters.max_batch.fetch_max(batch.len() as u64, Relaxed);
        let q = &self.queues[s];
        q.occupancy.lock().expect("ring poisoned").push(self.elapsed_ns(), occupied as f64);

        let mut idx = 0;
        while idx < batch.len() {
            let (next, outs) = self.dispatch_group(s, &batch, idx);
            let done = Instant::now();
            let mean_us = batch[idx..next]
                .iter()
                .map(|p| done.duration_since(p.submitted_at).as_nanos() as f64 / 1_000.0)
                .sum::<f64>()
                / (next - idx) as f64;
            q.latency.lock().expect("ring poisoned").push(self.elapsed_ns(), mean_us);
            self.counters.completed.fetch_add((next - idx) as u64, Relaxed);
            let mut st = q.state.lock().expect("ring poisoned");
            // `executing` was filled in batch order and groups retire
            // front to back, so the posted seqs are exactly its head.
            st.executing.drain(..outs.len());
            let wanted = outs.iter().any(|(seq, _)| st.waiting.contains(seq));
            for (seq, out) in outs {
                st.cq.push_back((seq, out));
            }
            drop(st);
            if wanted {
                q.completed.notify_all();
            }
            idx = next;
        }

        let mut st = q.state.lock().expect("ring poisoned");
        st.draining = false;
        q.completed.notify_all();
        if !st.sq.is_empty() {
            q.doorbell.notify_one();
        }
        st
    }

    /// Dispatch the next group of `batch` starting at index `i` against
    /// shard `s`, returning the index past the group plus its
    /// `(seq, output)` pairs in batch order. Unrecorded rings coalesce
    /// runs of adjacent writes (capped at [`MAX_COALESCE`]) into a single
    /// [`EdcPipeline::write_batch_indexed`](crate::pipeline::EdcPipeline::write_batch_indexed)
    /// call under one shard-lock acquisition; a recorded ring dispatches
    /// per-op and logs each in drain order.
    fn dispatch_group(
        &self,
        s: usize,
        batch: &[Pending],
        i: usize,
    ) -> (usize, Vec<(u64, OpOutput)>) {
        if let Some(rec) = self.recorder {
            let p = &batch[i];
            let out = self.dispatch_one(s, p);
            rec.lock().expect("recorder poisoned").record(p.now_ns, &p.op, &out);
            return (i + 1, vec![(p.seq, out)]);
        }
        if !matches!(batch[i].op, Op::Write { .. }) {
            // A run of consecutive reads shares one shard-lock
            // acquisition and posts as one group.
            let mut j = i + 1;
            while j < batch.len()
                && j - i < MAX_COALESCE
                && matches!(batch[j].op, Op::Read { .. })
                && matches!(batch[j - 1].op, Op::Read { .. })
            {
                j += 1;
            }
            let group = &batch[i..j];
            let outs = self.store.with_shard(s, |pipe| {
                group
                    .iter()
                    .map(|p| match &p.op {
                        Op::Read { offset, len } => {
                            (p.seq, OpOutput::from_read(pipe.read(p.now_ns, *offset, *len)))
                        }
                        other => {
                            (p.seq, OpOutput::Err(format!("unsupported ring op `{}`", other.kind())))
                        }
                    })
                    .collect()
            });
            return (j, outs);
        }
        let mut j = i + 1;
        while j < batch.len() && j - i < MAX_COALESCE && matches!(batch[j].op, Op::Write { .. })
        {
            j += 1;
        }
        let group = &batch[i..j];
        if group.len() > 1 {
            self.counters.coalesced_groups.fetch_add(1, Relaxed);
            self.counters.coalesced_writes.fetch_add(group.len() as u64, Relaxed);
        }
        let writes: Vec<BatchWrite<'_>> = group
            .iter()
            .map(|p| match &p.op {
                Op::Write { offset, data } => {
                    BatchWrite { now_ns: p.now_ns, offset: *offset, data }
                }
                _ => unreachable!("group holds only writes"),
            })
            .collect();
        let outs = match self.store.with_shard(s, |pipe| pipe.write_batch_indexed(&writes)) {
            Ok(indexed) => {
                let mut per: Vec<Vec<WriteResult>> =
                    (0..group.len()).map(|_| Vec::new()).collect();
                for (owner, r) in indexed {
                    per[owner].push(r);
                }
                group
                    .iter()
                    .zip(per)
                    .map(|(p, rs)| (p.seq, OpOutput::Writes(rs)))
                    .collect()
            }
            Err(e) => {
                // The shard rejected the whole group (power cut, offline
                // store): every rider fails, typed.
                let msg = e.to_string();
                group.iter().map(|p| (p.seq, OpOutput::Err(msg.clone()))).collect()
            }
        };
        (j, outs)
    }

    /// Dispatch a single op against shard `s` — the blocking path's
    /// exact effect, one shard-lock acquisition.
    fn dispatch_one(&self, s: usize, p: &Pending) -> OpOutput {
        match &p.op {
            Op::Write { offset, data } => OpOutput::from_writes(self.store.with_shard(s, |pipe| {
                pipe.write_batch(&[BatchWrite { now_ns: p.now_ns, offset: *offset, data }])
            })),
            Op::Read { offset, len } => OpOutput::from_read(
                self.store.with_shard(s, |pipe| pipe.read(p.now_ns, *offset, *len)),
            ),
            other => OpOutput::Err(format!("unsupported ring op `{}`", other.kind())),
        }
    }

    fn shutdown_all(&self) {
        for q in &self.queues {
            let mut st = q.state.lock().expect("ring poisoned");
            st.shutdown = true;
            drop(st);
            q.doorbell.notify_all();
            q.completed.notify_all();
        }
    }

    fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineConfig;
    use crate::shard::ShardConfig;

    fn store(shards: usize) -> ShardedPipeline {
        ShardedPipeline::new(
            4 << 20,
            ShardConfig { shards, extent_blocks: 4, pipeline: PipelineConfig::default() },
        )
    }

    #[test]
    fn write_then_read_round_trips() {
        let s = store(4);
        let block = vec![0xA5u8; 4096];
        let read = Ring::serve(&s, RingConfig::default(), |ring| {
            let t = ring.submit(0, Op::Write { offset: 8192, data: block.clone() }).unwrap();
            assert!(matches!(ring.wait(t), Ok(OpOutput::Writes(_))));
            let t = ring.submit(1, Op::Read { offset: 8192, len: 4096 }).unwrap();
            ring.wait(t).unwrap()
        });
        match read {
            OpOutput::Read { len, checksum } => {
                assert_eq!(len, 4096);
                assert_eq!(checksum, edc_compress::checksum64(&block, 4096));
            }
            other => panic!("unexpected output {other:?}"),
        }
    }

    #[test]
    fn validation_is_typed_and_at_submit_time() {
        let s = store(4);
        Ring::serve(&s, RingConfig::default(), |ring| {
            assert_eq!(
                ring.submit(0, Op::Write { offset: 1, data: vec![0u8; 4096] }),
                Err(RingError::Unaligned)
            );
            assert_eq!(
                ring.submit(0, Op::Write { offset: 0, data: Vec::new() }),
                Err(RingError::Unaligned)
            );
            // extent_blocks = 4 → 16 KiB extents; this read spans two.
            assert_eq!(
                ring.submit(0, Op::Read { offset: 8192, len: 16384 }),
                Err(RingError::CrossShard)
            );
            assert_eq!(ring.submit(0, Op::Flush), Err(RingError::Unsupported("flush")));
            assert_eq!(ring.submit(0, Op::Stats), Err(RingError::Unsupported("stats")));
        });
    }

    #[test]
    fn double_wait_is_unknown_ticket() {
        let s = store(1);
        Ring::serve(&s, RingConfig::default(), |ring| {
            let t = ring.submit(0, Op::Read { offset: 0, len: 4096 }).unwrap();
            assert!(ring.wait(t).is_ok());
            assert_eq!(ring.wait(t), Err(RingError::UnknownTicket));
            let bogus = Ticket { shard: 0, seq: 999 };
            assert_eq!(ring.wait(bogus), Err(RingError::UnknownTicket));
        });
    }

    #[test]
    fn poll_consumes_once_and_types_unknown_tickets() {
        let s = store(1);
        Ring::serve(&s, RingConfig::default(), |ring| {
            let t = ring.submit(0, Op::Read { offset: 0, len: 4096 }).unwrap();
            // Queued or executing reports Ok(None); completed reports the
            // output exactly once.
            let out = loop {
                match ring.poll(t).expect("in-flight ticket stays known") {
                    Some(out) => break out,
                    None => std::thread::yield_now(),
                }
            };
            assert!(matches!(out, OpOutput::Read { len: 4096, .. }));
            assert_eq!(ring.poll(t), Err(RingError::UnknownTicket));
            assert_eq!(ring.wait(t), Err(RingError::UnknownTicket));
            let bogus = Ticket { shard: 0, seq: 999 };
            assert_eq!(ring.poll(bogus), Err(RingError::UnknownTicket));
        });
    }

    #[test]
    fn drain_returns_completions_in_per_shard_submission_order() {
        let s = store(2);
        Ring::serve(&s, RingConfig { depth: 64, shards: 2 }, |ring| {
            let mut tickets = Vec::new();
            for i in 0..16u64 {
                let off = (i % 8) * 16384; // extents alternate shards
                tickets.push(ring.submit(i, Op::Read { offset: off, len: 4096 }).unwrap());
            }
            let done = ring.drain();
            assert_eq!(done.len(), 16);
            for shard in 0..2u32 {
                let seqs: Vec<u64> =
                    done.iter().filter(|(t, _)| t.shard == shard).map(|(t, _)| t.seq).collect();
                let mut sorted = seqs.clone();
                sorted.sort_unstable();
                assert_eq!(seqs, sorted, "shard {shard} completions out of order");
            }
            let st = ring.stats();
            assert_eq!(st.submitted, 16);
            assert_eq!(st.completed, 16);
        });
    }

    #[test]
    #[should_panic(expected = "disagrees with the store")]
    fn shard_count_mismatch_is_rejected() {
        let s = store(2);
        Ring::serve(&s, RingConfig { depth: 4, shards: 3 }, |_| {});
    }
}
