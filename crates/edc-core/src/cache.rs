//! Decompressed-run read cache (DRAM buffer).
//!
//! Every storage controller fronts its media with DRAM; for a compressed
//! store the natural cache unit is the *decompressed run* — a hit serves
//! the read at memory speed and skips both the flash fetch and the
//! decompression. The cache is LRU keyed by run identity (`run_start`)
//! and is invalidated by overwrites.
//!
//! The cache is generic over the cached value `V`. The simulator only
//! models hit/miss behaviour and uses `RunCache<()>` (identities alone);
//! the real write path ([`crate::pipeline::EdcPipeline`]) caches the
//! actual decompressed run bytes with `RunCache<Vec<u8>>` so repeated
//! reads of a hot run skip the device fetch and the decompressor.

use std::collections::HashMap;

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted by capacity pressure.
    pub evictions: u64,
    /// Entries dropped by overwrite invalidation.
    pub invalidations: u64,
}

impl CacheStats {
    /// Hit rate over all lookups (0 when never used).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }

    /// Fold another cache's counters into this one. Used to aggregate
    /// per-shard caches into one fleet-wide figure
    /// (`ShardedPipeline::stats`).
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.invalidations += other.invalidations;
    }
}

/// One resident run: its payload and last-use sequence number.
#[derive(Debug, Clone)]
struct Slot<V> {
    value: V,
    last_use: u64,
}

/// LRU cache over run identities (`run_start` block numbers), holding a
/// value of type `V` per run — `()` for hit/miss simulation, decompressed
/// bytes for the real read path.
#[derive(Debug, Clone)]
pub struct RunCache<V = ()> {
    entries: HashMap<u64, Slot<V>>,
    capacity: usize,
    seq: u64,
    stats: CacheStats,
}

impl<V> RunCache<V> {
    /// Create a cache holding up to `capacity` runs (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        RunCache { entries: HashMap::new(), capacity, seq: 0, stats: CacheStats::default() }
    }

    /// Whether caching is enabled.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Look up a run; refreshes recency and returns the cached value on a
    /// hit.
    pub fn lookup(&mut self, run_start: u64) -> Option<&V> {
        if self.capacity == 0 {
            return None;
        }
        self.seq += 1;
        match self.entries.get_mut(&run_start) {
            Some(slot) => {
                slot.last_use = self.seq;
                self.stats.hits += 1;
                Some(&slot.value)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Insert a run after a miss, evicting the least-recently-used entry
    /// when full.
    ///
    /// Returns the value displaced by this insert — the rejected value
    /// itself when caching is disabled, the LRU victim's value on a
    /// capacity eviction, or the previous value when re-inserting an
    /// existing key. Callers holding `RunCache<Vec<u8>>` recycle the
    /// returned buffer instead of letting its allocation die.
    pub fn insert(&mut self, run_start: u64, value: V) -> Option<V> {
        if self.capacity == 0 {
            return Some(value);
        }
        self.seq += 1;
        let mut evicted = None;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&run_start) {
            if let Some((&victim, _)) = self.entries.iter().min_by_key(|&(_, s)| s.last_use) {
                evicted = self.entries.remove(&victim).map(|s| s.value);
                self.stats.evictions += 1;
            }
        }
        let replaced = self.entries.insert(run_start, Slot { value, last_use: self.seq });
        evicted.or(replaced.map(|s| s.value))
    }

    /// Drop a run on overwrite or relocation. Returns the dropped value
    /// (if the run was resident) so `RunCache<Vec<u8>>` callers can
    /// recycle the buffer, mirroring [`RunCache::insert`].
    ///
    /// Ownership contract: the returned value has *left* the cache — it
    /// must not also be reachable through any other owner the caller
    /// recycles from (see `EdcPipeline::recycle_read_buf`, which
    /// `debug_assert`s exactly that before pooling the buffer).
    pub fn invalidate(&mut self, run_start: u64) -> Option<V> {
        let dropped = self.entries.remove(&run_start).map(|s| s.value);
        if dropped.is_some() {
            self.stats.invalidations += 1;
        }
        dropped
    }

    /// Iterate over the resident values in unspecified order. Used by
    /// debug assertions to prove a recycled buffer is not simultaneously
    /// cache-resident, and by tests.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.entries.values().map(|s| &s.value)
    }

    /// Current resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_cache_never_hits() {
        let mut c: RunCache = RunCache::new(0);
        assert!(!c.enabled());
        c.insert(1, ());
        assert!(c.lookup(1).is_none());
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn hit_after_insert() {
        let mut c: RunCache = RunCache::new(4);
        assert!(c.lookup(7).is_none());
        c.insert(7, ());
        assert!(c.lookup(7).is_some());
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c: RunCache = RunCache::new(2);
        c.insert(1, ());
        c.insert(2, ());
        assert!(c.lookup(1).is_some()); // 1 is now most recent
        c.insert(3, ()); // evicts 2
        assert!(c.lookup(1).is_some());
        assert!(c.lookup(2).is_none());
        assert!(c.lookup(3).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn invalidation_drops_entry() {
        let mut c: RunCache<Vec<u8>> = RunCache::new(4);
        c.insert(9, vec![42]);
        assert_eq!(c.invalidate(9), Some(vec![42]), "dropped value handed back");
        assert!(c.lookup(9).is_none());
        assert_eq!(c.stats().invalidations, 1);
        // Invalidating an absent run is a no-op.
        assert_eq!(c.invalidate(9), None);
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn capacity_respected() {
        let mut c: RunCache = RunCache::new(8);
        for i in 0..100 {
            c.insert(i, ());
        }
        assert_eq!(c.len(), 8);
        assert_eq!(c.stats().evictions, 92);
        // The last 8 inserted survive.
        for i in 92..100 {
            assert!(c.lookup(i).is_some(), "run {i}");
        }
    }

    #[test]
    fn reinsert_refreshes_without_eviction() {
        let mut c: RunCache = RunCache::new(2);
        c.insert(1, ());
        c.insert(2, ());
        c.insert(1, ()); // refresh, not a third entry
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn insert_returns_displaced_value() {
        // Disabled cache hands the buffer straight back.
        let mut off: RunCache<Vec<u8>> = RunCache::new(0);
        assert_eq!(off.insert(1, vec![7]), Some(vec![7]));

        let mut c: RunCache<Vec<u8>> = RunCache::new(2);
        assert_eq!(c.insert(1, vec![1]), None);
        assert_eq!(c.insert(2, vec![2]), None);
        // Capacity eviction returns the LRU victim's value.
        assert_eq!(c.insert(3, vec![3]), Some(vec![1]));
        // Re-insert returns the replaced value without an eviction.
        assert_eq!(c.insert(3, vec![4]), Some(vec![3]));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn merge_sums_every_counter() {
        let a = CacheStats { hits: 3, misses: 5, evictions: 1, invalidations: 2 };
        let b = CacheStats { hits: 7, misses: 11, evictions: 0, invalidations: 4 };
        let mut sum = a;
        sum.merge(&b);
        assert_eq!(sum, CacheStats { hits: 10, misses: 16, evictions: 1, invalidations: 6 });
        assert!((sum.hit_rate() - 10.0 / 26.0).abs() < 1e-12);
    }

    #[test]
    fn invalidate_hands_back_sole_ownership() {
        // Regression test for the recycled-buffer path: the buffer
        // returned by `invalidate` must be gone from the cache — the
        // same allocation must never be reachable both through the
        // cache and through the recycler's pool.
        let mut c: RunCache<Vec<u8>> = RunCache::new(4);
        c.insert(1, vec![0xAA; 64]);
        c.insert(2, vec![0xBB; 64]);
        let dropped = c.invalidate(1).expect("resident");
        assert!(
            c.values().all(|v| !std::ptr::eq(v.as_ptr(), dropped.as_ptr())),
            "invalidated buffer still reachable through the cache"
        );
        assert!(c.lookup(1).is_none());
        // And the displaced value of an insert obeys the same contract.
        c.insert(3, vec![0xCC; 64]);
        c.insert(4, vec![0xDD; 64]);
        c.insert(6, vec![0xFF; 64]);
        let evicted = c.insert(5, vec![0xEE; 64]).expect("capacity eviction");
        assert!(c.values().all(|v| !std::ptr::eq(v.as_ptr(), evicted.as_ptr())));
    }

    #[test]
    fn cached_values_round_trip() {
        let mut c: RunCache<Vec<u8>> = RunCache::new(2);
        c.insert(5, vec![1, 2, 3]);
        assert_eq!(c.lookup(5), Some(&vec![1, 2, 3]));
        // Re-insert replaces the value.
        c.insert(5, vec![9]);
        assert_eq!(c.lookup(5), Some(&vec![9]));
        assert_eq!(c.len(), 1);
    }
}
