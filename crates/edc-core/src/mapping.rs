//! The block-mapping table (paper §III-C, Fig. 5).
//!
//! EDC tracks, per 4 KiB logical block, where and how its data is stored:
//! the *LBA*, the compressed *Size*, and a 3-bit *Tag* naming the codec
//! (`000` = uncompressed). Because the Sequentiality Detector merges
//! contiguous writes into one compressed unit, an entry also records the
//! merged run it belongs to — a read of any block in the run fetches and
//! decompresses the whole run.
//!
//! The table is sharded behind [`std::sync::Mutex`]es so the parallel
//! compression engine ([`crate::parallel`]) can update it concurrently.

use edc_compress::CodecId;
use std::collections::HashMap;
use std::sync::Mutex;

/// Number of shards (power of two).
const SHARDS: usize = 16;

/// Per-block mapping entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MappingEntry {
    /// Codec tag (the paper's 3-bit field).
    pub tag: CodecId,
    /// First logical block of the merged run this block belongs to.
    pub run_start: u64,
    /// Length of the run in 4 KiB blocks (1 = unmerged).
    pub run_blocks: u32,
    /// Device byte address where the run's data lives (the paper's LBA
    /// field, from the quantized slot allocator).
    pub device_offset: u64,
    /// Flash bytes allocated for the whole run (post-quantization).
    pub stored_bytes: u64,
    /// Compressed payload bytes of the whole run.
    pub compressed_bytes: u64,
    /// 64-bit checksum of the stored payload (0 when unused, e.g. in the
    /// content-modelled simulator).
    pub checksum: u64,
    /// Whether the run carries an XOR parity page as its last stored page
    /// (DESIGN.md §10): parity = XOR of the payload's zero-padded 4 KiB
    /// pages, enabling reconstruction of any single rotted payload page.
    pub parity: bool,
}

impl MappingEntry {
    /// This block's even share of the run's allocated space, used for
    /// space accounting on per-block invalidation (rounded up so shares
    /// never under-count the allocation).
    pub fn share_bytes(&self) -> u64 {
        self.stored_bytes.div_ceil(u64::from(self.run_blocks))
    }

    /// Pack the paper's Fig. 5 fields — LBA, Size, Tag — into a 64-bit
    /// word: 44-bit LBA (sectors), 17-bit size (sectors, up to 128 MiB of
    /// run), 3-bit tag. Demonstrates the on-flash metadata layout; the
    /// in-memory table keeps the richer struct.
    pub fn pack_fields(lba_sector: u64, size_sectors: u32, tag: CodecId) -> u64 {
        assert!(lba_sector < 1 << 44, "LBA exceeds 44 bits");
        assert!(size_sectors < 1 << 17, "size exceeds 17 bits");
        (lba_sector << 20) | (u64::from(size_sectors) << 3) | u64::from(tag.tag())
    }

    /// Inverse of [`MappingEntry::pack_fields`].
    pub fn unpack_fields(word: u64) -> Option<(u64, u32, CodecId)> {
        let tag = CodecId::from_tag((word & 0b111) as u8)?;
        let size = ((word >> 3) & 0x1FFFF) as u32;
        let lba = word >> 20;
        Some((lba, size, tag))
    }
}

/// Sharded logical-block → mapping-entry table.
#[derive(Debug)]
pub struct BlockMap {
    shards: Vec<Mutex<HashMap<u64, MappingEntry>>>,
}

impl Default for BlockMap {
    fn default() -> Self {
        Self::new()
    }
}

impl BlockMap {
    /// Create an empty table.
    pub fn new() -> Self {
        BlockMap { shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect() }
    }

    #[inline]
    fn shard(&self, block: u64) -> &Mutex<HashMap<u64, MappingEntry>> {
        // Spread consecutive blocks across shards.
        &self.shards[(block as usize) & (SHARDS - 1)]
    }

    /// Look up a block.
    pub fn get(&self, block: u64) -> Option<MappingEntry> {
        self.shard(block).lock().expect("shard poisoned").get(&block).copied()
    }

    /// Insert entries for every block of a merged run; returns the evicted
    /// old entries (for space reclamation accounting).
    pub fn insert_run(&self, entry: MappingEntry) -> Vec<MappingEntry> {
        let mut evicted = Vec::new();
        for b in entry.run_start..entry.run_start + u64::from(entry.run_blocks) {
            if let Some(old) = self.shard(b).lock().expect("shard poisoned").insert(b, entry) {
                evicted.push(old);
            }
        }
        evicted
    }

    /// Remove one block's entry (invalidation).
    pub fn remove(&self, block: u64) -> Option<MappingEntry> {
        self.shard(block).lock().expect("shard poisoned").remove(&block)
    }

    /// Take a consistent point-in-time snapshot of the whole table.
    ///
    /// Every shard guard is acquired *before* any shard is read, so the
    /// result reflects one instant: no concurrent `insert_run`/`remove`
    /// can land between reading shard 0 and shard 15. The former `len()` /
    /// `live_runs()` implementations locked shards one at a time, which
    /// could under- or over-count while writers were active; both are now
    /// views over this snapshot.
    pub fn snapshot(&self) -> MapSnapshot {
        let guards: Vec<_> =
            self.shards.iter().map(|s| s.lock().expect("shard poisoned")).collect();
        // One representative entry per device offset. With dedup a shared
        // offset has entries under several run_starts; keep the smallest
        // so the representative is deterministic (shard iteration order
        // is not), for reproducible scrubs and fault injection.
        let mut best: HashMap<u64, MappingEntry> = HashMap::new();
        let mut blocks = 0usize;
        for guard in &guards {
            blocks += guard.len();
            for entry in guard.values() {
                best.entry(entry.device_offset)
                    .and_modify(|e| {
                        if entry.run_start < e.run_start {
                            *e = *entry;
                        }
                    })
                    .or_insert(*entry);
            }
        }
        let mut runs: Vec<MappingEntry> = best.into_values().collect();
        runs.sort_by_key(|e| e.device_offset);
        MapSnapshot { blocks, runs }
    }

    /// Number of mapped blocks (consistent across shards).
    pub fn len(&self) -> usize {
        self.snapshot().blocks
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot every live *run* (deduplicated by device offset): the unit
    /// the scrubber walks. Blocks of one merged run share a single entry
    /// value, so one representative per `device_offset` suffices — for a
    /// dedup-shared offset, the referrer with the smallest `run_start`.
    pub fn live_runs(&self) -> Vec<MappingEntry> {
        self.snapshot().runs
    }

    /// Every live `(device_offset, run_start)` referrer with its count of
    /// live blocks, sorted by `(device_offset, run_start)`. All shard
    /// guards are held, so the view is one consistent instant. This is
    /// the mapping side of the dedup refcount cross-check: the ledger
    /// must list exactly these referrers with exactly these counts.
    pub fn referrer_counts(&self) -> Vec<(MappingEntry, u32)> {
        let guards: Vec<_> =
            self.shards.iter().map(|s| s.lock().expect("shard poisoned")).collect();
        let mut counts: HashMap<(u64, u64), (MappingEntry, u32)> = HashMap::new();
        for guard in &guards {
            for entry in guard.values() {
                counts
                    .entry((entry.device_offset, entry.run_start))
                    .and_modify(|c| c.1 += 1)
                    .or_insert((*entry, 1));
            }
        }
        let mut out: Vec<(MappingEntry, u32)> = counts.into_values().collect();
        out.sort_by_key(|(e, _)| (e.device_offset, e.run_start));
        out
    }
}

/// A consistent point-in-time view of a [`BlockMap`], taken with all shard
/// locks held simultaneously (see [`BlockMap::snapshot`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MapSnapshot {
    /// Total mapped 4 KiB blocks at the snapshot instant.
    pub blocks: usize,
    /// Live runs deduplicated by device offset, sorted by device offset.
    pub runs: Vec<MappingEntry>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(start: u64, blocks: u32, tag: CodecId) -> MappingEntry {
        MappingEntry {
            tag,
            run_start: start,
            run_blocks: blocks,
            device_offset: start * 4096,
            stored_bytes: 2048 * u64::from(blocks),
            compressed_bytes: 1800 * u64::from(blocks),
            checksum: 0,
            parity: false,
        }
    }

    #[test]
    fn insert_and_get_single_block() {
        let m = BlockMap::new();
        m.insert_run(entry(7, 1, CodecId::Lzf));
        let e = m.get(7).unwrap();
        assert_eq!(e.tag, CodecId::Lzf);
        assert_eq!(e.run_blocks, 1);
        assert!(m.get(8).is_none());
    }

    #[test]
    fn run_entries_cover_every_block() {
        let m = BlockMap::new();
        m.insert_run(entry(100, 16, CodecId::Deflate));
        for b in 100..116 {
            let e = m.get(b).unwrap();
            assert_eq!(e.run_start, 100);
            assert_eq!(e.run_blocks, 16);
        }
        assert!(m.get(99).is_none());
        assert!(m.get(116).is_none());
        assert_eq!(m.len(), 16);
    }

    #[test]
    fn overwrite_returns_evicted_entries() {
        let m = BlockMap::new();
        m.insert_run(entry(0, 4, CodecId::Lzf));
        let evicted = m.insert_run(entry(2, 4, CodecId::Deflate));
        assert_eq!(evicted.len(), 2); // blocks 2 and 3 were mapped
        assert_eq!(m.get(0).unwrap().tag, CodecId::Lzf);
        assert_eq!(m.get(3).unwrap().tag, CodecId::Deflate);
        assert_eq!(m.len(), 6);
    }

    #[test]
    fn remove_invalidates() {
        let m = BlockMap::new();
        m.insert_run(entry(5, 1, CodecId::Bwt));
        assert!(m.remove(5).is_some());
        assert!(m.remove(5).is_none());
        assert!(m.is_empty());
    }

    #[test]
    fn share_bytes_rounds_up() {
        let e = MappingEntry {
            tag: CodecId::Lzf,
            run_start: 0,
            run_blocks: 3,
            device_offset: 0,
            stored_bytes: 10_000,
            compressed_bytes: 9_000,
            checksum: 0,
            parity: false,
        };
        assert_eq!(e.share_bytes(), 3334);
    }

    #[test]
    fn pack_unpack_round_trip() {
        for (lba, size, tag) in [
            (0u64, 0u32, CodecId::None),
            (123_456_789, 4, CodecId::Lzf),
            ((1 << 44) - 1, (1 << 17) - 1, CodecId::Bwt),
        ] {
            let w = MappingEntry::pack_fields(lba, size, tag);
            assert_eq!(MappingEntry::unpack_fields(w), Some((lba, size, tag)));
        }
    }

    #[test]
    fn unpack_rejects_bad_tag() {
        // Tag bits 0b111 are not a valid codec.
        assert!(MappingEntry::unpack_fields(0b111).is_none());
    }

    #[test]
    #[should_panic(expected = "LBA exceeds")]
    fn pack_rejects_oversized_lba() {
        let _ = MappingEntry::pack_fields(1 << 44, 0, CodecId::None);
    }

    #[test]
    fn live_runs_dedup_by_device_offset() {
        let m = BlockMap::new();
        m.insert_run(entry(0, 4, CodecId::Lzf)); // one run, 4 block entries
        m.insert_run(entry(10, 2, CodecId::Deflate));
        let runs = m.live_runs();
        assert_eq!(runs.len(), 2, "4+2 block entries collapse to 2 runs");
        assert_eq!(runs[0].device_offset, 0);
        assert_eq!(runs[1].device_offset, 10 * 4096);
        assert!(BlockMap::new().live_runs().is_empty());
    }

    #[test]
    fn shared_offset_representative_is_smallest_run_start() {
        // Two referrers of one device offset (a dedup share): the
        // snapshot keeps exactly one entry for the offset, and it is the
        // smallest run_start, deterministically.
        let m = BlockMap::new();
        let a = MappingEntry { device_offset: 9999, ..entry(40, 4, CodecId::Lzf) };
        let b = MappingEntry { device_offset: 9999, ..entry(8, 4, CodecId::Lzf) };
        m.insert_run(a);
        m.insert_run(b);
        let runs = m.live_runs();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].run_start, 8);
        assert_eq!(m.len(), 8);
    }

    #[test]
    fn referrer_counts_track_live_blocks_per_referrer() {
        let m = BlockMap::new();
        let a = MappingEntry { device_offset: 777, ..entry(0, 4, CodecId::Lzf) };
        let b = MappingEntry { device_offset: 777, ..entry(100, 4, CodecId::Lzf) };
        m.insert_run(a);
        m.insert_run(b);
        // Overwrite one of b's blocks with an unrelated run.
        m.insert_run(entry(103, 1, CodecId::None));
        let counts = m.referrer_counts();
        let at_777: Vec<(u64, u32)> = counts
            .iter()
            .filter(|(e, _)| e.device_offset == 777)
            .map(|(e, n)| (e.run_start, *n))
            .collect();
        assert_eq!(at_777, vec![(0, 4), (100, 3)]);
    }

    #[test]
    fn snapshot_is_internally_consistent_under_writers() {
        // Single-block runs with unique device offsets: at any one instant
        // the mapped-block count must equal the deduplicated run count.
        // Computing the two in separate sequential-locking passes (the old
        // len()/live_runs() implementations) can transiently disagree while
        // writers are active; the all-guards-held snapshot cannot.
        let m = std::sync::Arc::new(BlockMap::new());
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writers: Vec<_> = (0..3u64)
            .map(|t| {
                let m = m.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut i = 0u64;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        m.insert_run(entry(t * 1_000_000 + i, 1, CodecId::Lzf));
                        i += 1;
                    }
                })
            })
            .collect();
        for _ in 0..200 {
            let snap = m.snapshot();
            assert_eq!(snap.blocks, snap.runs.len());
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
        let snap = m.snapshot();
        assert_eq!(snap.blocks, m.len());
        assert_eq!(snap.runs, m.live_runs());
    }

    #[test]
    fn concurrent_access_is_safe() {
        let m = std::sync::Arc::new(BlockMap::new());
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        let b = t * 1000 + i;
                        m.insert_run(entry(b, 1, CodecId::Lzf));
                        assert!(m.get(b).is_some());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.len(), 4000);
    }
}
