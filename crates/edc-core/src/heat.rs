//! Decayed per-extent heat tracking for background recompression
//! (ROADMAP open item 2, DESIGN.md §12).
//!
//! The paper's elastic ladder picks a codec once, at write time, from the
//! *global* IOPS intensity — it never revisits the choice. Waltz
//! (PAPERS.md: temperature-aware cooperative compression) shows that a
//! per-extent temperature signal lets the background path fix both ends of
//! the spectrum later: cold extents written during a busy burst get
//! re-compressed with a stronger codec, and hot extents whose achieved
//! ratio is near 1.0 get demoted to write-through so reads skip
//! decompression entirely.
//!
//! The tracker here is deliberately cheap enough for the read/write hot
//! paths:
//!
//! * state is one `ExtentHeat` (16 B + flag) per *touched* extent, in a
//!   hash map — untouched address space costs nothing;
//! * an access does O(1) work per covered extent: exponential decay folded
//!   lazily into the update (`heat' = heat · 2^(-Δt/half_life) + 1`), so
//!   there is no periodic sweep and no global clock tick;
//! * classification ([`Temperature`]) applies the same lazy decay at query
//!   time, so a never-touched-again extent cools to `Cold` purely by the
//!   passage of (simulated) time.
//!
//! Temperature is *ephemeral statistics*, not durable metadata: it is not
//! journaled, and a power cut resets it (a recovered store re-learns heat
//! before recompressing anything — conservative, never wrong). The same
//! applies to the demotion flag: a demoted extent must re-cool after a
//! crash before the background pass will consider it again.
//!
//! Sharding: each shard's pipeline owns an independent `HeatTracker`.
//! Blocks are routed to shards by extent, so a given tracker only ever
//! sees its own shard's extents — no cross-shard synchronisation on the
//! hot path ("sharded-safe layout").

use std::collections::HashMap;

/// Tuning for the heat tracker and the background recompression policy.
#[derive(Debug, Clone, Copy)]
pub struct HeatConfig {
    /// Track heat and allow background recompression. Off = the tracker
    /// records nothing and `recompress_pass` is a no-op.
    pub enabled: bool,
    /// Heat aggregation granularity in 4 KiB blocks. `ShardedPipeline`
    /// aligns this with its routing extent so trackers stay shard-local.
    pub extent_blocks: u64,
    /// Exponential-decay half-life of an extent's heat, in simulated
    /// nanoseconds: after one half-life without accesses, heat halves.
    pub half_life_ns: u64,
    /// Decayed heat at or above which an extent is [`Temperature::Hot`].
    pub hot_threshold: f64,
    /// Decayed heat at or below which an extent is [`Temperature::Cold`].
    pub cold_threshold: f64,
    /// Demotion rule: a *hot* run whose achieved ratio
    /// (raw bytes / compressed bytes) is at or below this is rewritten as
    /// write-through, so its reads skip decompression. 1.1 = "less than
    /// 10 % savings is not worth decompressing on every hot read".
    pub demote_ratio: f64,
}

impl Default for HeatConfig {
    fn default() -> Self {
        HeatConfig {
            enabled: true,
            extent_blocks: 64,
            half_life_ns: 1_000_000_000,
            hot_threshold: 4.0,
            cold_threshold: 0.5,
            demote_ratio: 1.1,
        }
    }
}

/// Decayed temperature class of an extent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Temperature {
    /// Below the cold threshold: candidate for strongest-codec
    /// recompression.
    Cold,
    /// Between the thresholds: left alone by the background pass.
    Warm,
    /// At or above the hot threshold: candidate for write-through
    /// demotion when its compression ratio is near 1.0.
    Hot,
}

/// Per-extent state: decayed access mass plus the timestamp of the last
/// fold, so decay is applied lazily on the next touch or query.
#[derive(Debug, Clone, Copy)]
struct ExtentHeat {
    heat: f64,
    last_ns: u64,
    demoted: bool,
}

/// Recency+frequency heat tracker over fixed-size extents.
#[derive(Debug, Clone)]
pub struct HeatTracker {
    config: HeatConfig,
    extents: HashMap<u64, ExtentHeat>,
}

impl HeatTracker {
    /// New tracker with the given tuning.
    pub fn new(config: HeatConfig) -> Self {
        HeatTracker { config, extents: HashMap::new() }
    }

    /// The tuning this tracker was built with.
    pub fn config(&self) -> &HeatConfig {
        &self.config
    }

    fn extent_of(&self, block: u64) -> u64 {
        block / self.config.extent_blocks.max(1)
    }

    fn decayed(&self, e: &ExtentHeat, now_ns: u64) -> f64 {
        // Clocks in tests and benches are simulated; tolerate a stale
        // `now` by skipping decay rather than producing NaN/Inf.
        if now_ns <= e.last_ns || self.config.half_life_ns == 0 {
            return e.heat;
        }
        let dt = (now_ns - e.last_ns) as f64;
        e.heat * (-(dt / self.config.half_life_ns as f64)).exp2()
    }

    /// Record an access to `[start_block, start_block + blocks)` at
    /// simulated time `now_ns`. O(1) per covered extent.
    pub fn record(&mut self, now_ns: u64, start_block: u64, blocks: u64) {
        if !self.config.enabled || blocks == 0 {
            return;
        }
        let first = self.extent_of(start_block);
        let last = self.extent_of(start_block + blocks - 1);
        for extent in first..=last {
            let entry = self
                .extents
                .entry(extent)
                .or_insert(ExtentHeat { heat: 0.0, last_ns: now_ns, demoted: false });
            entry.heat = if now_ns <= entry.last_ns || self.config.half_life_ns == 0 {
                entry.heat + 1.0
            } else {
                let dt = (now_ns - entry.last_ns) as f64;
                entry.heat * (-(dt / self.config.half_life_ns as f64)).exp2() + 1.0
            };
            entry.last_ns = entry.last_ns.max(now_ns);
        }
    }

    /// Decayed heat of the extent containing `block` at `now_ns`
    /// (0.0 for never-touched extents).
    pub fn heat_at(&self, now_ns: u64, block: u64) -> f64 {
        self.extents
            .get(&self.extent_of(block))
            .map_or(0.0, |e| self.decayed(e, now_ns))
    }

    /// Classify the run `[start_block, start_block + blocks)` by its
    /// *hottest* covered extent: a run is `Hot` if any extent is hot and
    /// `Cold` only when every covered extent is cold — the conservative
    /// choice for both recompression and demotion.
    pub fn classify_run(&self, now_ns: u64, start_block: u64, blocks: u64) -> Temperature {
        let blocks = blocks.max(1);
        let first = self.extent_of(start_block);
        let last = self.extent_of(start_block + blocks - 1);
        let mut max_heat = 0.0f64;
        for extent in first..=last {
            if let Some(e) = self.extents.get(&extent) {
                max_heat = max_heat.max(self.decayed(e, now_ns));
            }
        }
        if max_heat >= self.config.hot_threshold {
            Temperature::Hot
        } else if max_heat <= self.config.cold_threshold {
            Temperature::Cold
        } else {
            Temperature::Warm
        }
    }

    /// Mark every extent covered by the run as demoted to write-through.
    /// Volatile: lost (reset) on power cut, like the heat itself.
    pub fn mark_demoted(&mut self, start_block: u64, blocks: u64) {
        let blocks = blocks.max(1);
        let first = self.extent_of(start_block);
        let last = self.extent_of(start_block + blocks - 1);
        for extent in first..=last {
            self.extents
                .entry(extent)
                .or_insert(ExtentHeat { heat: 0.0, last_ns: 0, demoted: false })
                .demoted = true;
        }
    }

    /// Whether any extent covered by the run has been demoted (demoted
    /// runs are excluded from recompression until the flag is reset).
    pub fn run_demoted(&self, start_block: u64, blocks: u64) -> bool {
        let blocks = blocks.max(1);
        let first = self.extent_of(start_block);
        let last = self.extent_of(start_block + blocks - 1);
        (first..=last).any(|e| self.extents.get(&e).is_some_and(|x| x.demoted))
    }

    /// Number of extents with tracked state.
    pub fn tracked_extents(&self) -> usize {
        self.extents.len()
    }

    /// Drop all state (used on recovery: temperature is not durable).
    pub fn reset(&mut self) {
        self.extents.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker() -> HeatTracker {
        HeatTracker::new(HeatConfig {
            enabled: true,
            extent_blocks: 4,
            half_life_ns: 1_000,
            hot_threshold: 3.0,
            cold_threshold: 0.5,
            demote_ratio: 1.1,
        })
    }

    #[test]
    fn repeated_access_heats_up() {
        let mut t = tracker();
        assert_eq!(t.classify_run(0, 0, 4), Temperature::Cold);
        for _ in 0..4 {
            t.record(100, 0, 1);
        }
        assert_eq!(t.classify_run(100, 0, 4), Temperature::Hot);
        assert!(t.heat_at(100, 0) >= 4.0);
    }

    #[test]
    fn heat_decays_with_half_life() {
        let mut t = tracker();
        t.record(0, 0, 1);
        t.record(0, 0, 1);
        let h0 = t.heat_at(0, 0);
        let h1 = t.heat_at(1_000, 0);
        let h2 = t.heat_at(2_000, 0);
        assert!((h1 - h0 / 2.0).abs() < 1e-9, "one half-life halves: {h0} -> {h1}");
        assert!((h2 - h0 / 4.0).abs() < 1e-9, "two half-lives quarter: {h0} -> {h2}");
    }

    #[test]
    fn cooling_reaches_cold_without_further_touches() {
        let mut t = tracker();
        for _ in 0..8 {
            t.record(0, 0, 1);
        }
        assert_eq!(t.classify_run(0, 0, 1), Temperature::Hot);
        // 8 * 2^-5 = 0.25 <= cold threshold after five half-lives.
        assert_eq!(t.classify_run(5_000, 0, 1), Temperature::Cold);
    }

    #[test]
    fn run_classification_takes_hottest_extent() {
        let mut t = tracker();
        // Heat only the second extent of a two-extent run.
        for _ in 0..8 {
            t.record(0, 4, 1);
        }
        assert_eq!(t.classify_run(0, 0, 8), Temperature::Hot);
        assert_eq!(t.classify_run(0, 0, 4), Temperature::Cold);
    }

    #[test]
    fn range_touch_heats_every_covered_extent() {
        let mut t = tracker();
        t.record(0, 2, 8); // spans extents 0, 1, 2
        assert!(t.heat_at(0, 0) > 0.0);
        assert!(t.heat_at(0, 4) > 0.0);
        assert!(t.heat_at(0, 8) > 0.0);
        assert_eq!(t.heat_at(0, 12), 0.0);
        assert_eq!(t.tracked_extents(), 3);
    }

    #[test]
    fn stale_clock_does_not_poison_heat() {
        let mut t = tracker();
        t.record(5_000, 0, 1);
        t.record(1_000, 0, 1); // clock went backwards
        let h = t.heat_at(5_000, 0);
        assert!(h.is_finite() && h >= 2.0, "both touches counted, no decay blow-up: {h}");
    }

    #[test]
    fn demotion_flag_sticks_until_reset() {
        let mut t = tracker();
        assert!(!t.run_demoted(0, 8));
        t.mark_demoted(0, 8);
        assert!(t.run_demoted(0, 8));
        assert!(t.run_demoted(4, 1), "every covered extent flagged");
        assert!(!t.run_demoted(8, 1));
        t.reset();
        assert!(!t.run_demoted(0, 8), "reset clears volatile demotion state");
        assert_eq!(t.tracked_extents(), 0);
    }

    #[test]
    fn disabled_tracker_records_nothing() {
        let mut t = HeatTracker::new(HeatConfig { enabled: false, ..HeatConfig::default() });
        t.record(0, 0, 64);
        assert_eq!(t.tracked_extents(), 0);
        assert_eq!(t.classify_run(0, 0, 64), Temperature::Cold);
    }
}
