//! Quantized space allocation (paper §III-C, Fig. 5).
//!
//! Compressed blocks vary in size, and the FTL's out-of-place updates mean
//! a re-compressed overwrite may no longer fit its old slot. EDC
//! side-steps relocation churn by allocating compressed data only in
//! quanta of 25 %, 50 % or 75 % of the uncompressed block size; a block
//! that compresses to more than 75 % "is considered to be non-compressible
//! and kept in its uncompressed form". The internal fragmentation this
//! trades away from relocation is tracked so the `ablate_alloc` benchmark
//! can quantify the design choice against exact-fit allocation.

/// Allocation policy: the paper's quantized scheme or exact sector fit
/// (the ablation baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[derive(Default)]
pub enum AllocPolicy {
    /// 25 / 50 / 75 / 100 % quanta (the paper's design).
    #[default]
    Quantized,
    /// Round up to the device sector (1 KiB) only.
    ExactFit,
}


/// Outcome of placing one compressed block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Bytes of flash space allocated.
    pub allocated_bytes: u64,
    /// Whether the data is stored compressed (false = write-through because
    /// the compressed size exceeded the write-through threshold).
    pub compressed: bool,
}

/// Cumulative allocation statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Placements performed.
    pub placements: u64,
    /// Total bytes allocated.
    pub allocated_bytes: u64,
    /// Total compressed payload bytes stored.
    pub payload_bytes: u64,
    /// Bytes lost to internal fragmentation (allocated − payload).
    pub internal_frag_bytes: u64,
    /// Placements stored uncompressed due to the 75 % rule.
    pub write_through: u64,
    /// Overwrites whose new quantum differed from the old one (would force
    /// relocation in a slotted layout).
    pub quantum_changes: u64,
}

/// The quantized allocator.
#[derive(Debug, Clone)]
pub struct QuantizedAllocator {
    policy: AllocPolicy,
    /// Device sector granularity for exact-fit rounding.
    sector_bytes: u64,
    stats: AllocStats,
}

impl QuantizedAllocator {
    /// Create an allocator with the paper's policy and 1 KiB sectors.
    pub fn new(policy: AllocPolicy) -> Self {
        QuantizedAllocator { policy, sector_bytes: 1024, stats: AllocStats::default() }
    }

    /// The active policy.
    pub fn policy(&self) -> AllocPolicy {
        self.policy
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> AllocStats {
        self.stats
    }

    /// Size that placing `compressed_bytes` of payload for an
    /// `original_bytes` block would allocate, without recording it.
    pub fn quantum_for(&self, original_bytes: u64, compressed_bytes: u64) -> Placement {
        assert!(original_bytes > 0);
        match self.policy {
            AllocPolicy::Quantized => {
                let quarter = original_bytes.div_ceil(4);
                if compressed_bytes <= quarter {
                    Placement { allocated_bytes: quarter, compressed: true }
                } else if compressed_bytes <= 2 * quarter {
                    Placement { allocated_bytes: 2 * quarter, compressed: true }
                } else if compressed_bytes <= 3 * quarter {
                    Placement { allocated_bytes: 3 * quarter, compressed: true }
                } else {
                    // > 75 %: non-compressible, store uncompressed.
                    Placement { allocated_bytes: original_bytes, compressed: false }
                }
            }
            AllocPolicy::ExactFit => {
                if compressed_bytes >= original_bytes {
                    Placement { allocated_bytes: original_bytes, compressed: false }
                } else {
                    let rounded = compressed_bytes
                        .div_ceil(self.sector_bytes)
                        .max(1)
                        * self.sector_bytes;
                    Placement {
                        allocated_bytes: rounded.min(original_bytes),
                        compressed: rounded < original_bytes,
                    }
                }
            }
        }
    }

    /// Place a block, recording statistics. `previous_allocation` is the
    /// old quantum when this is an overwrite (for relocation accounting).
    pub fn place(
        &mut self,
        original_bytes: u64,
        compressed_bytes: u64,
        previous_allocation: Option<u64>,
    ) -> Placement {
        let p = self.quantum_for(original_bytes, compressed_bytes);
        self.stats.placements += 1;
        self.stats.allocated_bytes += p.allocated_bytes;
        let payload = if p.compressed { compressed_bytes } else { original_bytes };
        self.stats.payload_bytes += payload;
        self.stats.internal_frag_bytes += p.allocated_bytes - payload;
        if !p.compressed {
            self.stats.write_through += 1;
        }
        if let Some(old) = previous_allocation {
            if old != p.allocated_bytes {
                self.stats.quantum_changes += 1;
            }
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_quanta() {
        // §III-C: a 4096-byte block compressed to 1562 bytes gets the 50 %
        // slot; re-compressed to 2008 bytes it still fits 50 %.
        let a = QuantizedAllocator::new(AllocPolicy::Quantized);
        let p1 = a.quantum_for(4096, 1562);
        assert_eq!(p1.allocated_bytes, 2048);
        assert!(p1.compressed);
        let p2 = a.quantum_for(4096, 2008);
        assert_eq!(p2.allocated_bytes, 2048);
    }

    #[test]
    fn quantum_boundaries() {
        let a = QuantizedAllocator::new(AllocPolicy::Quantized);
        assert_eq!(a.quantum_for(4096, 1).allocated_bytes, 1024);
        assert_eq!(a.quantum_for(4096, 1024).allocated_bytes, 1024);
        assert_eq!(a.quantum_for(4096, 1025).allocated_bytes, 2048);
        assert_eq!(a.quantum_for(4096, 2048).allocated_bytes, 2048);
        assert_eq!(a.quantum_for(4096, 3072).allocated_bytes, 3072);
        // > 75 %: write through at full size.
        let p = a.quantum_for(4096, 3073);
        assert_eq!(p.allocated_bytes, 4096);
        assert!(!p.compressed);
    }

    #[test]
    fn merged_blocks_use_proportional_quanta() {
        // A 64 KiB merged run compressed to 20 KiB: 25 % = 16 KiB, 50 % = 32 KiB.
        let a = QuantizedAllocator::new(AllocPolicy::Quantized);
        let p = a.quantum_for(65536, 20 * 1024);
        assert_eq!(p.allocated_bytes, 32768);
    }

    #[test]
    fn exact_fit_rounds_to_sectors() {
        let a = QuantizedAllocator::new(AllocPolicy::ExactFit);
        assert_eq!(a.quantum_for(4096, 1500).allocated_bytes, 2048);
        assert_eq!(a.quantum_for(4096, 1024).allocated_bytes, 1024);
        assert_eq!(a.quantum_for(4096, 3100).allocated_bytes, 4096);
        // Equal-or-larger compressed output stores raw.
        let p = a.quantum_for(4096, 4096);
        assert!(!p.compressed);
    }

    #[test]
    fn exact_fit_has_less_fragmentation_than_quantized() {
        // For unmerged 4 KiB blocks the 25 % quanta coincide with the 1 KiB
        // sector, so the policies differ only on *merged* runs — use a
        // 16 KiB run, where quantized steps are 4 KiB.
        let mut q = QuantizedAllocator::new(AllocPolicy::Quantized);
        let mut e = QuantizedAllocator::new(AllocPolicy::ExactFit);
        for comp in [4500u64, 5000, 9000, 10_000, 12_500] {
            q.place(16384, comp, None);
            e.place(16384, comp, None);
        }
        assert!(e.stats().internal_frag_bytes < q.stats().internal_frag_bytes);
    }

    #[test]
    fn quantized_absorbs_size_drift_without_quantum_change() {
        // The design rationale: overwrites whose compressed size drifts
        // within a quantum do not change the allocation size, while
        // exact-fit relocates on nearly every drift. (16 KiB merged run so
        // the quanta are coarser than the sector.)
        let mut q = QuantizedAllocator::new(AllocPolicy::Quantized);
        let mut e = QuantizedAllocator::new(AllocPolicy::ExactFit);
        let sizes = [5000u64, 5500, 6100, 7000, 7900, 6500];
        let mut q_prev = None;
        let mut e_prev = None;
        for &s in &sizes {
            q_prev = Some(q.place(16384, s, q_prev).allocated_bytes);
            e_prev = Some(e.place(16384, s, e_prev).allocated_bytes);
        }
        assert!(
            q.stats().quantum_changes < e.stats().quantum_changes,
            "quantized {} !< exact {}",
            q.stats().quantum_changes,
            e.stats().quantum_changes
        );
        assert_eq!(q.stats().quantum_changes, 0);
    }

    #[test]
    fn stats_accumulate() {
        let mut a = QuantizedAllocator::new(AllocPolicy::Quantized);
        a.place(4096, 1000, None);
        a.place(4096, 4000, None); // write-through
        let s = a.stats();
        assert_eq!(s.placements, 2);
        assert_eq!(s.allocated_bytes, 1024 + 4096);
        assert_eq!(s.payload_bytes, 1000 + 4096);
        assert_eq!(s.internal_frag_bytes, 24);
        assert_eq!(s.write_through, 1);
    }

    #[test]
    #[should_panic]
    fn zero_original_rejected() {
        let a = QuantizedAllocator::new(AllocPolicy::Quantized);
        let _ = a.quantum_for(0, 0);
    }
}
