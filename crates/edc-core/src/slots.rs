//! Quantized slot store: device-space management for compressed blocks.
//!
//! Fig. 5's design implies a segregated-fit layout: compressed runs occupy
//! slots of quantized sizes, and because an overwrite whose compressed
//! size drifts within the same quantum reuses a same-sized slot, the store
//! never fragments across quanta ("the space can be well utilized and
//! unnecessary fragmentations can be avoided"). The store hands out device
//! byte addresses: fresh space comes from a bump cursor, freed slots are
//! recycled per size class (LIFO, so recently-freed — and recently-erased —
//! space is reused first).

use std::collections::HashMap;

/// Segregated-fit slot allocator over a device's logical byte space.
#[derive(Debug, Clone)]
pub struct SlotStore {
    device_bytes: u64,
    /// Bump cursor for never-used space.
    cursor: u64,
    /// Free slots per size class (bytes → stack of offsets).
    free: HashMap<u64, Vec<u64>>,
    /// Live slots: device offset → (blocks still referencing it, slot bytes).
    /// A slot shared by a merged run's blocks returns to the free pool only
    /// when its last block is superseded — releasing earlier would let two
    /// live runs alias the same device bytes.
    refs: HashMap<u64, (u32, u64)>,
    /// Live allocated bytes.
    live_bytes: u64,
    /// Times the cursor wrapped (fragmentation overflow; should be rare).
    wraps: u64,
}

impl SlotStore {
    /// Create a store over `device_bytes` of device space.
    pub fn new(device_bytes: u64) -> Self {
        assert!(device_bytes > 0);
        SlotStore {
            device_bytes,
            cursor: 0,
            free: HashMap::new(),
            refs: HashMap::new(),
            live_bytes: 0,
            wraps: 0,
        }
    }

    /// Allocate a slot of `bytes` to be referenced by `blocks` mapping
    /// entries; the slot frees automatically once `blocks` block
    /// references have been dropped via [`SlotStore::release_block_ref`].
    pub fn alloc_run(&mut self, bytes: u64, blocks: u32) -> u64 {
        assert!(blocks > 0);
        let off = self.alloc(bytes);
        self.refs.insert(off, (blocks, bytes));
        off
    }

    /// Adopt a pre-existing slot at a fixed `offset` — the recovery path:
    /// journal replay re-registers each surviving run exactly where the
    /// pre-crash allocator placed it. The bump cursor advances past the
    /// adopted slot, and any stale free-pool entry at this offset is
    /// scrubbed (an earlier replayed run may have "freed" the slot that a
    /// later run then legitimately reused).
    pub fn adopt_run(&mut self, offset: u64, bytes: u64, blocks: u32) {
        assert!(blocks > 0);
        assert!(bytes > 0 && offset + bytes <= self.device_bytes, "adopted slot exceeds device");
        if let Some(stack) = self.free.get_mut(&bytes) {
            stack.retain(|&o| o != offset);
        }
        self.refs.insert(offset, (blocks, bytes));
        self.live_bytes += bytes;
        self.cursor = self.cursor.max(offset + bytes);
    }

    /// Add `blocks` additional block references to the live slot at
    /// `offset` — a dedup sharer's mapping entries now point at it. The
    /// slot then frees only after *every* referrer's blocks release, so a
    /// shared run can never be erased while refs are outstanding.
    ///
    /// # Panics
    ///
    /// Panics if the slot is not live (sharing a dead slot is a logic
    /// bug, never a recoverable condition).
    pub fn add_run_refs(&mut self, offset: u64, blocks: u32) {
        assert!(blocks > 0);
        let e = self.refs.get_mut(&offset).expect("add_run_refs on a dead slot");
        e.0 += blocks;
    }

    /// Outstanding block references to the slot at `offset` (0 when the
    /// slot is not live) — the dedup integrity audit's cross-check hook.
    pub fn block_refs(&self, offset: u64) -> u32 {
        self.refs.get(&offset).map_or(0, |e| e.0)
    }

    /// Drop one block's reference to the slot at `offset` (the block's
    /// mapping entry was superseded). Returns `Some((offset, bytes))` when
    /// this was the last reference and the slot returned to the free pool.
    pub fn release_block_ref(&mut self, offset: u64) -> Option<(u64, u64)> {
        let (remaining, bytes) = self.refs.get_mut(&offset).map(|e| {
            e.0 = e.0.saturating_sub(1);
            *e
        })?;
        if remaining == 0 {
            self.refs.remove(&offset);
            self.release(offset, bytes);
            return Some((offset, bytes));
        }
        None
    }

    /// Allocate a slot of exactly `bytes`; returns its device offset.
    pub fn alloc(&mut self, bytes: u64) -> u64 {
        assert!(bytes > 0 && bytes <= self.device_bytes);
        self.live_bytes += bytes;
        if let Some(stack) = self.free.get_mut(&bytes) {
            if let Some(off) = stack.pop() {
                return off;
            }
        }
        if self.cursor + bytes > self.device_bytes {
            // Segregated-fit overflow: recycle from the start. Slots that
            // still live there are overwritten (the mapping layer has
            // long since superseded them in workloads that reach this).
            self.cursor = 0;
            self.wraps += 1;
        }
        let off = self.cursor;
        self.cursor += bytes;
        off
    }

    /// Return a slot of `bytes` at `offset` to the free pool.
    pub fn release(&mut self, offset: u64, bytes: u64) {
        debug_assert!(offset + bytes <= self.device_bytes);
        self.live_bytes = self.live_bytes.saturating_sub(bytes);
        self.free.entry(bytes).or_default().push(offset);
    }

    /// Live allocated bytes.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Number of cursor wraps (fragmentation overflows).
    pub fn wraps(&self) -> u64 {
        self.wraps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_allocations_bump_sequentially() {
        let mut s = SlotStore::new(1 << 20);
        assert_eq!(s.alloc(1024), 0);
        assert_eq!(s.alloc(2048), 1024);
        assert_eq!(s.alloc(1024), 3072);
        assert_eq!(s.live_bytes(), 4096);
    }

    #[test]
    fn freed_slots_are_recycled_by_size() {
        let mut s = SlotStore::new(1 << 20);
        let a = s.alloc(2048);
        let _b = s.alloc(2048);
        s.release(a, 2048);
        // Same size class: reuse a's slot.
        assert_eq!(s.alloc(2048), a);
        // Different size class: fresh space.
        let c = s.alloc(1024);
        assert_eq!(c, 4096);
    }

    #[test]
    fn quantum_drift_within_class_reuses_slot() {
        // The Fig. 5 rationale: overwrite cycles at a stable quantum reuse
        // one slot forever.
        let mut s = SlotStore::new(1 << 20);
        let first = s.alloc(2048);
        for _ in 0..100 {
            s.release(first, 2048);
            assert_eq!(s.alloc(2048), first);
        }
        assert_eq!(s.live_bytes(), 2048);
    }

    #[test]
    fn run_slot_frees_only_after_last_block_reference() {
        let mut s = SlotStore::new(1 << 20);
        let off = s.alloc_run(8192, 4);
        // Three of four blocks superseded: slot still live.
        for _ in 0..3 {
            assert_eq!(s.release_block_ref(off), None);
        }
        // A fresh allocation of the same class must NOT reuse the live slot.
        let other = s.alloc(8192);
        assert_ne!(other, off, "live slot must not be handed out again");
        // Last reference frees it.
        assert_eq!(s.release_block_ref(off), Some((off, 8192)));
        assert_eq!(s.alloc(8192), off, "freed slot is reusable");
    }

    #[test]
    fn shared_slot_survives_until_every_referrer_releases() {
        let mut s = SlotStore::new(1 << 20);
        let off = s.alloc_run(8192, 4); // writer: 4 block refs
        s.add_run_refs(off, 4); // dedup sharer: 4 more
        assert_eq!(s.block_refs(off), 8);
        // The writer's blocks all release: slot must stay live.
        for _ in 0..4 {
            assert_eq!(s.release_block_ref(off), None);
        }
        assert_eq!(s.block_refs(off), 4);
        assert_ne!(s.alloc(8192), off, "shared slot must not be reallocated");
        // The sharer's blocks release: now it frees.
        for _ in 0..3 {
            assert_eq!(s.release_block_ref(off), None);
        }
        assert_eq!(s.release_block_ref(off), Some((off, 8192)));
        assert_eq!(s.block_refs(off), 0);
    }

    #[test]
    #[should_panic(expected = "dead slot")]
    fn sharing_a_dead_slot_panics() {
        let mut s = SlotStore::new(1 << 20);
        s.add_run_refs(4096, 1);
    }

    #[test]
    fn double_release_is_harmless() {
        let mut s = SlotStore::new(1 << 20);
        let off = s.alloc_run(1024, 1);
        assert!(s.release_block_ref(off).is_some());
        // Further releases (e.g. duplicate evictions) are no-ops.
        assert_eq!(s.release_block_ref(off), None);
        // The slot appears exactly once in the pool.
        assert_eq!(s.alloc(1024), off);
        let next = s.alloc(1024);
        assert_ne!(next, off, "offset must not be handed out twice");
    }

    #[test]
    fn cursor_wraps_when_exhausted() {
        let mut s = SlotStore::new(4096);
        s.alloc(4096);
        let off = s.alloc(1024); // no free slot: wraps
        assert_eq!(off, 0);
        assert_eq!(s.wraps(), 1);
    }

    #[test]
    fn live_bytes_tracks_alloc_release() {
        let mut s = SlotStore::new(1 << 20);
        let a = s.alloc(3072);
        assert_eq!(s.live_bytes(), 3072);
        s.release(a, 3072);
        assert_eq!(s.live_bytes(), 0);
    }

    #[test]
    #[should_panic]
    fn oversized_alloc_rejected() {
        let mut s = SlotStore::new(1024);
        let _ = s.alloc(2048);
    }

    #[test]
    fn adopt_run_replays_placements() {
        let mut s = SlotStore::new(1 << 20);
        // Replay two runs at the offsets a pre-crash allocator chose.
        s.adopt_run(4096, 2048, 2);
        s.adopt_run(8192, 1024, 1);
        assert_eq!(s.live_bytes(), 3072);
        // Fresh allocations land past every adopted slot.
        assert_eq!(s.alloc(1024), 9216);
        // Adopted slots free normally once their references drop.
        assert_eq!(s.release_block_ref(8192), Some((8192, 1024)));
    }

    #[test]
    fn adopt_scrubs_stale_free_entry() {
        // Replay order: run A at offset 0 is superseded (slot freed), then
        // run B legitimately reuses offset 0. The free pool must not hand
        // offset 0 out again while B lives.
        let mut s = SlotStore::new(1 << 20);
        s.adopt_run(0, 2048, 1);
        s.release_block_ref(0); // A fully superseded → 0 enters the pool
        s.adopt_run(0, 2048, 1); // B reuses the same offset
        let next = s.alloc(2048);
        assert_ne!(next, 0, "live adopted slot must not be reallocated");
    }
}
