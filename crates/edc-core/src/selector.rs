//! The elastic algorithm selector (paper §III-D, Fig. 6).
//!
//! EDC "sets several calculated-IOPS thresholds for different compression
//! algorithms": intensity below the lowest threshold selects the strongest
//! codec; each higher band selects a faster one; above the highest
//! threshold compression is skipped entirely. The paper's evaluated ladder
//! uses Gzip in idle periods and Lzf in busy periods (§IV-B: "EDC uses
//! both the Gzip and Lzf compression algorithms during different periods").

use edc_compress::CodecId;

/// Codec strength order used for "upgrade" comparisons (background
/// recompression only rewrites a run when the target codec is strictly
/// stronger than its current tag): None < fast LZ < Deflate < BWT.
pub fn codec_strength(id: CodecId) -> u8 {
    match id {
        CodecId::None => 0,
        CodecId::Lzf | CodecId::Lz4 => 1,
        CodecId::Deflate => 2,
        CodecId::Bwt => 3,
    }
}

/// One rung of the ladder: use `codec` while intensity is ≤ `max_calc_iops`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LadderRung {
    /// Upper calculated-IOPS bound (inclusive) for this rung.
    pub max_calc_iops: f64,
    /// Codec applied within the band.
    pub codec: CodecId,
}

/// Threshold-ladder configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectorConfig {
    /// Rungs in ascending `max_calc_iops` order. Intensity above the last
    /// rung selects [`CodecId::None`] (skip compression — "if the I/O
    /// intensity exceeds the highest calculated-IOPS threshold, EDC will
    /// skip the compression function").
    pub rungs: Vec<LadderRung>,
}

impl SelectorConfig {
    /// The paper's two-algorithm ladder: Gzip while calculated IOPS ≤
    /// `gzip_below`, Lzf while ≤ `skip_above`, nothing beyond.
    pub fn two_level(gzip_below: f64, skip_above: f64) -> Self {
        assert!(gzip_below < skip_above, "bands must be ordered");
        SelectorConfig {
            rungs: vec![
                LadderRung { max_calc_iops: gzip_below, codec: CodecId::Deflate },
                LadderRung { max_calc_iops: skip_above, codec: CodecId::Lzf },
            ],
        }
    }

    /// Default ladder used throughout the experiments: Gzip under 1 200
    /// calculated IOPS, Lzf up to 4 000, write-through beyond. The skip
    /// rung sits near the simulated device's saturation point, matching
    /// the paper's rule that only intensities "exceeding the highest
    /// calculated-IOPS threshold" bypass compression; the Gzip rung covers
    /// idle and moderate periods so the strong codec carries a meaningful
    /// share of the data (the paper finds ≈ 20 % Gzip the best balance).
    ///
    /// (The knee values are configurable; Fig. 12 sweeps the Gzip/Lzf
    /// boundary.)
    pub fn paper_default() -> Self {
        Self::two_level(1200.0, 4000.0)
    }

    /// A three-level "deep idle" ladder (DESIGN.md ablation 4): Bzip2 when
    /// nearly idle, then Gzip, then Lzf, then write-through.
    pub fn three_level(bzip2_below: f64, gzip_below: f64, skip_above: f64) -> Self {
        assert!(bzip2_below < gzip_below && gzip_below < skip_above);
        SelectorConfig {
            rungs: vec![
                LadderRung { max_calc_iops: bzip2_below, codec: CodecId::Bwt },
                LadderRung { max_calc_iops: gzip_below, codec: CodecId::Deflate },
                LadderRung { max_calc_iops: skip_above, codec: CodecId::Lzf },
            ],
        }
    }

    /// The strongest codec anywhere in the ladder — what background
    /// recompression upgrades cold runs to
    /// ([`crate::pipeline::EdcPipeline::recompress_pass`]). For the paper
    /// ladder this is Deflate; a three-level ladder yields Bwt.
    pub fn strongest_codec(&self) -> CodecId {
        self.rungs
            .iter()
            .map(|r| r.codec)
            .max_by_key(|&c| codec_strength(c))
            .unwrap_or(CodecId::None)
    }

    /// Validate ordering.
    pub fn validate(&self) {
        assert!(!self.rungs.is_empty(), "ladder needs at least one rung");
        for w in self.rungs.windows(2) {
            assert!(
                w[0].max_calc_iops < w[1].max_calc_iops,
                "ladder thresholds must be strictly ascending"
            );
        }
    }
}

impl Default for SelectorConfig {
    fn default() -> Self {
        SelectorConfig::paper_default()
    }
}

/// The selector: maps current intensity to a codec.
///
/// ```
/// use edc_core::AlgorithmSelector;
/// use edc_compress::CodecId;
///
/// let s = AlgorithmSelector::default(); // paper ladder: Gzip / Lzf / skip
/// assert_eq!(s.select(50.0), CodecId::Deflate);  // idle → strong codec
/// assert_eq!(s.select(2500.0), CodecId::Lzf);    // busy → fast codec
/// assert_eq!(s.select(50_000.0), CodecId::None); // burst → skip
/// ```
#[derive(Debug, Clone)]
pub struct AlgorithmSelector {
    config: SelectorConfig,
}

impl AlgorithmSelector {
    /// Build from a validated config.
    pub fn new(config: SelectorConfig) -> Self {
        config.validate();
        AlgorithmSelector { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &SelectorConfig {
        &self.config
    }

    /// Select the codec for the given calculated IOPS.
    pub fn select(&self, calc_iops: f64) -> CodecId {
        for rung in &self.config.rungs {
            if calc_iops <= rung.max_calc_iops {
                return rung.codec;
            }
        }
        CodecId::None
    }
}

impl Default for AlgorithmSelector {
    fn default() -> Self {
        Self::new(SelectorConfig::paper_default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_band_mapping() {
        let s = AlgorithmSelector::default();
        assert_eq!(s.select(0.0), CodecId::Deflate); // idle → strong codec
        assert_eq!(s.select(1200.0), CodecId::Deflate); // inclusive bound
        assert_eq!(s.select(1201.0), CodecId::Lzf);
        assert_eq!(s.select(4000.0), CodecId::Lzf);
        assert_eq!(s.select(4001.0), CodecId::None); // burst → skip
        assert_eq!(s.select(1e9), CodecId::None);
    }

    #[test]
    fn three_level_ladder() {
        let s = AlgorithmSelector::new(SelectorConfig::three_level(50.0, 300.0, 1500.0));
        assert_eq!(s.select(10.0), CodecId::Bwt);
        assert_eq!(s.select(100.0), CodecId::Deflate);
        assert_eq!(s.select(1000.0), CodecId::Lzf);
        assert_eq!(s.select(2000.0), CodecId::None);
    }

    #[test]
    fn monotonicity_weaker_codecs_at_higher_intensity() {
        // Increasing intensity must never select a *stronger* codec.
        let strength = |c: CodecId| match c {
            CodecId::Bwt => 3,
            CodecId::Deflate => 2,
            CodecId::Lzf | CodecId::Lz4 => 1,
            CodecId::None => 0,
        };
        let s = AlgorithmSelector::default();
        let mut prev = i32::MAX;
        for iops in [0.0, 50.0, 150.0, 400.0, 900.0, 1200.0, 3000.0, 1e6] {
            let cur = strength(s.select(iops));
            assert!(cur <= prev, "strength rose at {iops} calc-IOPS");
            prev = cur;
        }
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unordered_ladder_rejected() {
        let cfg = SelectorConfig {
            rungs: vec![
                LadderRung { max_calc_iops: 500.0, codec: CodecId::Deflate },
                LadderRung { max_calc_iops: 100.0, codec: CodecId::Lzf },
            ],
        };
        AlgorithmSelector::new(cfg);
    }

    #[test]
    #[should_panic(expected = "at least one rung")]
    fn empty_ladder_rejected() {
        AlgorithmSelector::new(SelectorConfig { rungs: vec![] });
    }

    #[test]
    fn two_level_constructor_enforces_order() {
        let cfg = SelectorConfig::two_level(10.0, 20.0);
        assert_eq!(cfg.rungs.len(), 2);
    }

    #[test]
    fn strongest_codec_tracks_ladder_shape() {
        assert_eq!(SelectorConfig::paper_default().strongest_codec(), CodecId::Deflate);
        assert_eq!(
            SelectorConfig::three_level(50.0, 300.0, 1500.0).strongest_codec(),
            CodecId::Bwt
        );
        assert_eq!(SelectorConfig { rungs: vec![] }.strongest_codec(), CodecId::None);
    }
}
