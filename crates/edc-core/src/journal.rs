//! Append-only mapping-table journal for crash recovery.
//!
//! The pipeline's mapping table ([`crate::mapping::BlockMap`]) is volatile:
//! a power cut mid-flush would orphan every compressed run on the device.
//! The journal is the durable record — each committed run appends one
//! fixed-size, checksummed [`MappingEntry`] record, written *after* the
//! run's payload pages so that a record's presence implies its payload is
//! durable (classic write-ahead ordering, payload-then-commit).
//!
//! [`crate::pipeline::EdcPipeline::recover`] replays the journal in append
//! order: later records supersede earlier ones exactly as the original
//! `insert_run` calls did, so the rebuilt table equals the pre-crash table
//! restricted to runs whose commit record landed. Replay stops at the
//! first torn or corrupt record (a cut mid-append leaves a recognizable
//! partial tail), and every record carries its own CRC so a damaged middle
//! record cannot smuggle garbage into the rebuilt mapping.
//!
//! The journal models an on-flash structure but lives in memory here, like
//! the pipeline's device image; what matters for the reproduction is the
//! *ordering contract* between payload programs and the commit record,
//! which the pipeline enforces against the simulated power-cut clock.

use crate::mapping::MappingEntry;
use core::fmt;
use edc_compress::{checksum64, CodecId};

/// Magic bytes opening every record.
const MAGIC: [u8; 4] = *b"EDCJ";

/// Serialized size of one journal record:
/// magic(4) + seq(8) + tag(1) + run_start(8) + run_blocks(4) +
/// device_offset(8) + stored_bytes(8) + compressed_bytes(8) +
/// checksum(8) + record_crc(8).
///
/// The tag byte carries the 3-bit codec tag in its low bits, the owning
/// shard id in bits 3–6 (`SHARD_SHIFT`/`SHARD_MASK`) and the run's parity
/// flag in bit 7 (`PARITY_BIT`) — the record layout (and so old journals,
/// whose shard bits are all zero) is unchanged by either feature.
pub const RECORD_BYTES: usize = 65;

/// Bit 7 of the record's tag byte: set when the run carries an XOR parity
/// page (see [`MappingEntry::parity`]).
const PARITY_BIT: u8 = 0x80;

/// Low bits of the record's tag byte holding the codec tag proper.
const CODEC_MASK: u8 = 0b0000_0111;

/// Codec-bits value marking a dedup *reference* record ([`DedupRef`]):
/// `0b110` is not a valid [`CodecId`] tag, so legacy journals can never
/// contain one (they replay with every refcount = 1) and pre-dedup
/// replayers reject such records as torn rather than misparse them.
const REF_BITS: u8 = 0b110;

/// Bits 3–6 of the record's tag byte hold the id of the shard that owns
/// the journal stream. Pre-sharding journals carry zeros here, which
/// decodes as shard 0 — the single shard of a legacy pipeline.
const SHARD_SHIFT: u32 = 3;
const SHARD_MASK: u8 = 0b0111_1000;

/// Maximum shard count representable in a journal record (4 bits).
pub const MAX_SHARDS: usize = 16;

/// A semantically impossible journal record — decoded cleanly (CRC valid)
/// but describing a placement that cannot exist on the device. Unlike a
/// torn tail this indicates real corruption or a logic bug, so recovery
/// surfaces it instead of silently skipping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryError {
    /// Sequence number of the offending record.
    pub seq: u64,
    /// What was impossible about it.
    pub reason: &'static str,
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "journal record {} is invalid: {}", self.seq, self.reason)
    }
}

impl std::error::Error for RecoveryError {}

/// A dedup reference record: the run at `run_start` shares the already-
/// journaled run stored at `device_offset` instead of storing its own
/// payload. Physical fields (codec tag, stored/compressed bytes, parity)
/// are inherited from that target's live record at replay time; the
/// record carries only what is sharer-specific plus the content hash (so
/// recovery can re-teach the hash index).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DedupRef {
    /// First logical block of the sharing run.
    pub run_start: u64,
    /// Length of the sharing run in blocks (must equal the target's).
    pub run_blocks: u32,
    /// Device offset of the shared target run.
    pub device_offset: u64,
    /// Content hash of the shared raw bytes (0 = unknown, hash-index
    /// repopulation only; never used for correctness).
    pub content_hash: u64,
    /// Checksum of the stored payload seeded with the sharer's
    /// `run_start` (each referrer's entries verify independently).
    pub checksum: u64,
}

/// One decoded journal record: a mapping-table insertion proper, or a
/// dedup reference that aliases an earlier one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalRecord {
    /// A committed run with its own stored payload.
    Put(MappingEntry),
    /// A dedup sharer pointing at an earlier run's payload.
    Ref(DedupRef),
}

/// What a journal replay produced.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Replay {
    /// Decoded `Put` entries, in append order (the pre-dedup view; equals
    /// the `Put` subsequence of [`Replay::records`]).
    pub entries: Vec<MappingEntry>,
    /// Every decoded record — `Put`s and dedup `Ref`s — in append order.
    pub records: Vec<JournalRecord>,
    /// Records scanned, including the torn/corrupt one that stopped the
    /// scan (if any).
    pub scanned: u64,
    /// Whether the scan stopped early at a torn or corrupt record.
    pub torn_tail: bool,
    /// Sequence number of the first cleanly-decoded record whose shard id
    /// does not match the journal's own shard. Replay stops there (the
    /// prefix is kept); recovery surfaces it as a routing error rather
    /// than silently adopting another shard's mappings.
    pub wrong_shard: Option<u64>,
}

/// The append-only journal of mapping-table insertions.
#[derive(Debug, Clone, Default)]
pub struct MappingJournal {
    buf: Vec<u8>,
    seq: u64,
    shard: u8,
}

impl MappingJournal {
    /// An empty journal for the legacy single-shard pipeline (shard 0).
    pub fn new() -> Self {
        MappingJournal::default()
    }

    /// An empty journal owned by shard `shard` of a sharded pipeline.
    /// Every appended record carries the id in tag-byte bits 3–6.
    pub fn with_shard(shard: u8) -> Self {
        assert!(
            (shard as usize) < MAX_SHARDS,
            "shard id {shard} does not fit the record's 4-bit field"
        );
        MappingJournal { buf: Vec::new(), seq: 0, shard }
    }

    /// The shard that owns this journal stream (0 for legacy journals).
    pub fn shard(&self) -> u8 {
        self.shard
    }

    /// Records appended so far.
    pub fn records(&self) -> u64 {
        self.seq
    }

    /// Journal size in bytes.
    pub fn len_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Append one committed run's mapping entry.
    pub fn append(&mut self, entry: &MappingEntry) {
        let start = self.buf.len();
        self.buf.extend_from_slice(&MAGIC);
        self.buf.extend_from_slice(&self.seq.to_le_bytes());
        self.buf.push(
            entry.tag.tag()
                | (self.shard << SHARD_SHIFT)
                | if entry.parity { PARITY_BIT } else { 0 },
        );
        self.buf.extend_from_slice(&entry.run_start.to_le_bytes());
        self.buf.extend_from_slice(&entry.run_blocks.to_le_bytes());
        self.buf.extend_from_slice(&entry.device_offset.to_le_bytes());
        self.buf.extend_from_slice(&entry.stored_bytes.to_le_bytes());
        self.buf.extend_from_slice(&entry.compressed_bytes.to_le_bytes());
        self.buf.extend_from_slice(&entry.checksum.to_le_bytes());
        let crc = checksum64(&self.buf[start..], self.seq);
        self.buf.extend_from_slice(&crc.to_le_bytes());
        self.seq += 1;
    }

    /// Append one dedup reference record (see [`DedupRef`]): `entry` is
    /// the *sharer's* mapping entry pointing at the shared offset, and
    /// `content_hash` the hash of the shared raw bytes (0 = unknown).
    /// Field mapping onto the fixed record layout: the codec bits carry
    /// `REF_BITS`, `stored_bytes` carries the content hash, and
    /// `compressed_bytes` is zero (both physical sizes replay from the
    /// target's own record).
    pub fn append_ref(&mut self, entry: &MappingEntry, content_hash: u64) {
        let start = self.buf.len();
        self.buf.extend_from_slice(&MAGIC);
        self.buf.extend_from_slice(&self.seq.to_le_bytes());
        self.buf.push(REF_BITS | (self.shard << SHARD_SHIFT));
        self.buf.extend_from_slice(&entry.run_start.to_le_bytes());
        self.buf.extend_from_slice(&entry.run_blocks.to_le_bytes());
        self.buf.extend_from_slice(&entry.device_offset.to_le_bytes());
        self.buf.extend_from_slice(&content_hash.to_le_bytes());
        self.buf.extend_from_slice(&0u64.to_le_bytes());
        self.buf.extend_from_slice(&entry.checksum.to_le_bytes());
        let crc = checksum64(&self.buf[start..], self.seq);
        self.buf.extend_from_slice(&crc.to_le_bytes());
        self.seq += 1;
    }

    /// Truncate the journal to its first `bytes` bytes — the test hook for
    /// simulating a tear mid-record (a cut between the pipeline's payload
    /// programs and commit record never produces one; a cut inside a real
    /// device's journal page program would).
    pub fn truncate_bytes(&mut self, bytes: usize) {
        self.buf.truncate(bytes);
        self.seq = (self.buf.len() / RECORD_BYTES) as u64;
    }

    /// Drop every record (a fresh device).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.seq = 0;
    }

    /// Decode the journal. Replay stops at the first record that is
    /// incomplete, has bad magic, an out-of-order sequence number, an
    /// invalid codec tag, or a CRC mismatch — everything before the stop
    /// point is trustworthy, everything after is unreachable by
    /// construction (records are appended strictly in order).
    pub fn replay(&self) -> Replay {
        let mut out = Replay::default();
        let mut at = 0usize;
        let mut seq = 0u64;
        while at < self.buf.len() {
            out.scanned += 1;
            if self.buf.len() - at < RECORD_BYTES {
                out.torn_tail = true;
                break;
            }
            let rec = &self.buf[at..at + RECORD_BYTES];
            let crc = u64::from_le_bytes(rec[RECORD_BYTES - 8..].try_into().expect("8 bytes"));
            let parity = rec[12] & PARITY_BIT != 0;
            let rec_shard = (rec[12] & SHARD_MASK) >> SHARD_SHIFT;
            let codec_bits = rec[12] & CODEC_MASK;
            let is_ref = codec_bits == REF_BITS;
            let tag = CodecId::from_tag(codec_bits);
            let rec_seq = u64::from_le_bytes(rec[4..12].try_into().expect("8 bytes"));
            let valid = rec[..4] == MAGIC
                && rec_seq == seq
                && (tag.is_some() || is_ref)
                && checksum64(&rec[..RECORD_BYTES - 8], seq) == crc;
            if !valid {
                out.torn_tail = true;
                break;
            }
            if rec_shard != self.shard {
                out.wrong_shard = Some(seq);
                break;
            }
            let u64_at = |o: usize| u64::from_le_bytes(rec[o..o + 8].try_into().expect("8 bytes"));
            let run_blocks = u32::from_le_bytes(rec[21..25].try_into().expect("4 bytes"));
            if is_ref {
                out.records.push(JournalRecord::Ref(DedupRef {
                    run_start: u64_at(13),
                    run_blocks,
                    device_offset: u64_at(25),
                    content_hash: u64_at(33),
                    checksum: u64_at(49),
                }));
            } else {
                let entry = MappingEntry {
                    tag: tag.expect("validated above"),
                    run_start: u64_at(13),
                    run_blocks,
                    device_offset: u64_at(25),
                    stored_bytes: u64_at(33),
                    compressed_bytes: u64_at(41),
                    checksum: u64_at(49),
                    parity,
                };
                out.entries.push(entry);
                out.records.push(JournalRecord::Put(entry));
            }
            seq += 1;
            at += RECORD_BYTES;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(i: u64) -> MappingEntry {
        MappingEntry {
            tag: if i.is_multiple_of(2) { CodecId::Lz4 } else { CodecId::None },
            run_start: i * 7,
            run_blocks: 1 + (i as u32 % 5),
            device_offset: i * 4096,
            stored_bytes: 2048,
            compressed_bytes: 1500 + i,
            checksum: i.wrapping_mul(0xDEAD_BEEF),
            parity: i.is_multiple_of(3),
        }
    }

    #[test]
    fn round_trips_every_field() {
        let mut j = MappingJournal::new();
        let entries: Vec<MappingEntry> = (0..20).map(entry).collect();
        for e in &entries {
            j.append(e);
        }
        assert_eq!(j.records(), 20);
        assert_eq!(j.len_bytes(), 20 * RECORD_BYTES);
        let r = j.replay();
        assert!(!r.torn_tail);
        assert_eq!(r.scanned, 20);
        assert_eq!(r.entries, entries);
    }

    #[test]
    fn empty_journal_replays_empty() {
        let r = MappingJournal::new().replay();
        assert_eq!(r, Replay::default());
    }

    #[test]
    fn later_record_supersedes_same_run_with_different_codec() {
        // Background recompression relies on append-order replay: the
        // same logical run is journaled again with a different codec tag
        // and device offset (Lzf run rewritten as Deflate, or demoted to
        // None), and replay must present both records in order so the
        // recovering mapper keeps only the later one.
        let mut j = MappingJournal::new();
        let original = MappingEntry {
            tag: CodecId::Lzf,
            run_start: 40,
            run_blocks: 4,
            device_offset: 8192,
            stored_bytes: 12288,
            compressed_bytes: 11000,
            checksum: 0xAB,
            parity: false,
        };
        let recompressed = MappingEntry {
            tag: CodecId::Deflate,
            device_offset: 65536,
            stored_bytes: 4096,
            compressed_bytes: 3000,
            checksum: 0xCD,
            ..original
        };
        let demoted = MappingEntry {
            tag: CodecId::None,
            device_offset: 131072,
            stored_bytes: 16384,
            compressed_bytes: 16384,
            checksum: 0xEF,
            ..original
        };
        j.append(&original);
        j.append(&recompressed);
        j.append(&demoted);
        let r = j.replay();
        assert_eq!(r.entries, vec![original, recompressed, demoted]);
        // Replaying through a BlockMap (what recovery does) leaves only
        // the last rewrite live.
        let map = crate::mapping::BlockMap::new();
        let mut evicted = Vec::new();
        for e in &r.entries {
            evicted.extend(map.insert_run(*e));
        }
        let mut evicted_offsets: Vec<u64> = evicted.iter().map(|e| e.device_offset).collect();
        evicted_offsets.dedup();
        assert_eq!(
            evicted_offsets,
            vec![8192, 65536],
            "each rewrite evicts its predecessor (one entry per covered block)"
        );
        assert_eq!(map.get(40).unwrap().tag, CodecId::None);
        assert_eq!(map.get(43).unwrap().device_offset, 131072);
    }

    #[test]
    fn ref_records_round_trip_and_interleave_with_puts() {
        let mut j = MappingJournal::with_shard(3);
        let put = entry(0);
        j.append(&put);
        let sharer = MappingEntry {
            run_start: 400,
            checksum: 0x5A5A,
            ..put
        };
        j.append_ref(&sharer, 0xFEED_F00D);
        j.append(&entry(1));
        let r = j.replay();
        assert!(!r.torn_tail && r.wrong_shard.is_none());
        assert_eq!(r.entries, vec![put, entry(1)], "entries stays the Put-only view");
        assert_eq!(r.records.len(), 3);
        assert_eq!(r.records[0], JournalRecord::Put(put));
        assert_eq!(
            r.records[1],
            JournalRecord::Ref(DedupRef {
                run_start: 400,
                run_blocks: put.run_blocks,
                device_offset: put.device_offset,
                content_hash: 0xFEED_F00D,
                checksum: 0x5A5A,
            })
        );
        assert_eq!(r.records[2], JournalRecord::Put(entry(1)));
    }

    #[test]
    fn legacy_replay_has_put_only_records() {
        // A journal with no dedup activity replays with records ==
        // entries mapped through Put — the refcounts-all-one case.
        let mut j = MappingJournal::new();
        for i in 0..6 {
            j.append(&entry(i));
        }
        let r = j.replay();
        assert_eq!(r.records.len(), r.entries.len());
        assert!(r
            .records
            .iter()
            .zip(&r.entries)
            .all(|(rec, e)| *rec == JournalRecord::Put(*e)));
    }

    #[test]
    fn torn_tail_detected_and_prefix_kept() {
        let mut j = MappingJournal::new();
        for i in 0..5 {
            j.append(&entry(i));
        }
        // Tear mid-way through the last record.
        j.truncate_bytes(4 * RECORD_BYTES + 17);
        let r = j.replay();
        assert!(r.torn_tail);
        assert_eq!(r.entries.len(), 4);
        assert_eq!(r.scanned, 5);
        assert_eq!(r.entries, (0..4).map(entry).collect::<Vec<_>>());
    }

    #[test]
    fn corrupt_record_stops_replay() {
        let mut j = MappingJournal::new();
        for i in 0..6 {
            j.append(&entry(i));
        }
        // Flip one payload byte of record 3: its CRC no longer matches.
        j.buf[3 * RECORD_BYTES + 20] ^= 0xFF;
        let r = j.replay();
        assert!(r.torn_tail);
        assert_eq!(r.entries.len(), 3, "replay must stop before the damaged record");
    }

    #[test]
    fn bad_magic_stops_replay() {
        let mut j = MappingJournal::new();
        j.append(&entry(0));
        j.append(&entry(1));
        j.buf[RECORD_BYTES] = b'X'; // wreck record 1's magic (and its CRC input)
        let r = j.replay();
        assert!(r.torn_tail);
        assert_eq!(r.entries.len(), 1);
    }

    #[test]
    fn clear_resets() {
        let mut j = MappingJournal::new();
        j.append(&entry(0));
        j.clear();
        assert_eq!(j.records(), 0);
        assert_eq!(j.replay(), Replay::default());
    }

    #[test]
    fn shard_id_round_trips_without_disturbing_fields() {
        for shard in [0u8, 1, 7, 15] {
            let mut j = MappingJournal::with_shard(shard);
            let entries: Vec<MappingEntry> = (0..12).map(entry).collect();
            for e in &entries {
                j.append(e);
            }
            let r = j.replay();
            assert!(!r.torn_tail);
            assert_eq!(r.wrong_shard, None);
            assert_eq!(r.entries, entries, "shard bits must not leak into codec/parity");
        }
    }

    #[test]
    fn legacy_records_decode_as_shard_zero() {
        // A journal written before sharding existed (shard bits zero) must
        // replay cleanly under a shard-0 owner — byte-for-byte identical
        // encoding, so `new()` vs `with_shard(0)` produce the same stream.
        let mut legacy = MappingJournal::new();
        let mut shard0 = MappingJournal::with_shard(0);
        for i in 0..8 {
            legacy.append(&entry(i));
            shard0.append(&entry(i));
        }
        assert_eq!(legacy.buf, shard0.buf);
        let r = legacy.replay();
        assert!(!r.torn_tail && r.wrong_shard.is_none());
        assert_eq!(r.entries.len(), 8);
    }

    #[test]
    fn foreign_shard_record_stops_replay() {
        let mut j = MappingJournal::with_shard(2);
        for i in 0..4 {
            j.append(&entry(i));
        }
        // Rewrite record 2's shard bits to shard 5 and fix up its CRC so the
        // record decodes cleanly — replay must stop at it and report routing.
        let at = 2 * RECORD_BYTES;
        j.buf[at + 12] = (j.buf[at + 12] & !super::SHARD_MASK) | (5 << super::SHARD_SHIFT);
        let crc = checksum64(&j.buf[at..at + RECORD_BYTES - 8], 2);
        j.buf[at + RECORD_BYTES - 8..at + RECORD_BYTES].copy_from_slice(&crc.to_le_bytes());
        let r = j.replay();
        assert_eq!(r.wrong_shard, Some(2));
        assert_eq!(r.entries.len(), 2, "prefix before the foreign record is kept");
        assert!(!r.torn_tail);
    }
}
