//! Append-only mapping-table journal for crash recovery.
//!
//! The pipeline's mapping table ([`crate::mapping::BlockMap`]) is volatile:
//! a power cut mid-flush would orphan every compressed run on the device.
//! The journal is the durable record — each committed run appends one
//! fixed-size, checksummed [`MappingEntry`] record, written *after* the
//! run's payload pages so that a record's presence implies its payload is
//! durable (classic write-ahead ordering, payload-then-commit).
//!
//! [`crate::pipeline::EdcPipeline::recover`] replays the journal in append
//! order: later records supersede earlier ones exactly as the original
//! `insert_run` calls did, so the rebuilt table equals the pre-crash table
//! restricted to runs whose commit record landed. Replay stops at the
//! first torn or corrupt record (a cut mid-append leaves a recognizable
//! partial tail), and every record carries its own CRC so a damaged middle
//! record cannot smuggle garbage into the rebuilt mapping.
//!
//! The journal models an on-flash structure but lives in memory here, like
//! the pipeline's device image; what matters for the reproduction is the
//! *ordering contract* between payload programs and the commit record,
//! which the pipeline enforces against the simulated power-cut clock.

use crate::mapping::MappingEntry;
use core::fmt;
use edc_compress::{checksum64, CodecId};

/// Magic bytes opening every record.
const MAGIC: [u8; 4] = *b"EDCJ";

/// Serialized size of one journal record:
/// magic(4) + seq(8) + tag(1) + run_start(8) + run_blocks(4) +
/// device_offset(8) + stored_bytes(8) + compressed_bytes(8) +
/// checksum(8) + record_crc(8).
///
/// The tag byte carries the 3-bit codec tag in its low bits and the
/// run's parity flag in bit 7 (`PARITY_BIT`) — the record layout (and
/// so old journals) is unchanged by the parity feature.
pub const RECORD_BYTES: usize = 65;

/// Bit 7 of the record's tag byte: set when the run carries an XOR parity
/// page (see [`MappingEntry::parity`]).
const PARITY_BIT: u8 = 0x80;

/// A semantically impossible journal record — decoded cleanly (CRC valid)
/// but describing a placement that cannot exist on the device. Unlike a
/// torn tail this indicates real corruption or a logic bug, so recovery
/// surfaces it instead of silently skipping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryError {
    /// Sequence number of the offending record.
    pub seq: u64,
    /// What was impossible about it.
    pub reason: &'static str,
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "journal record {} is invalid: {}", self.seq, self.reason)
    }
}

impl std::error::Error for RecoveryError {}

/// What a journal replay produced.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Replay {
    /// Decoded entries, in append order.
    pub entries: Vec<MappingEntry>,
    /// Records scanned, including the torn/corrupt one that stopped the
    /// scan (if any).
    pub scanned: u64,
    /// Whether the scan stopped early at a torn or corrupt record.
    pub torn_tail: bool,
}

/// The append-only journal of mapping-table insertions.
#[derive(Debug, Clone, Default)]
pub struct MappingJournal {
    buf: Vec<u8>,
    seq: u64,
}

impl MappingJournal {
    /// An empty journal.
    pub fn new() -> Self {
        MappingJournal::default()
    }

    /// Records appended so far.
    pub fn records(&self) -> u64 {
        self.seq
    }

    /// Journal size in bytes.
    pub fn len_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Append one committed run's mapping entry.
    pub fn append(&mut self, entry: &MappingEntry) {
        let start = self.buf.len();
        self.buf.extend_from_slice(&MAGIC);
        self.buf.extend_from_slice(&self.seq.to_le_bytes());
        self.buf.push(entry.tag.tag() | if entry.parity { PARITY_BIT } else { 0 });
        self.buf.extend_from_slice(&entry.run_start.to_le_bytes());
        self.buf.extend_from_slice(&entry.run_blocks.to_le_bytes());
        self.buf.extend_from_slice(&entry.device_offset.to_le_bytes());
        self.buf.extend_from_slice(&entry.stored_bytes.to_le_bytes());
        self.buf.extend_from_slice(&entry.compressed_bytes.to_le_bytes());
        self.buf.extend_from_slice(&entry.checksum.to_le_bytes());
        let crc = checksum64(&self.buf[start..], self.seq);
        self.buf.extend_from_slice(&crc.to_le_bytes());
        self.seq += 1;
    }

    /// Truncate the journal to its first `bytes` bytes — the test hook for
    /// simulating a tear mid-record (a cut between the pipeline's payload
    /// programs and commit record never produces one; a cut inside a real
    /// device's journal page program would).
    pub fn truncate_bytes(&mut self, bytes: usize) {
        self.buf.truncate(bytes);
        self.seq = (self.buf.len() / RECORD_BYTES) as u64;
    }

    /// Drop every record (a fresh device).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.seq = 0;
    }

    /// Decode the journal. Replay stops at the first record that is
    /// incomplete, has bad magic, an out-of-order sequence number, an
    /// invalid codec tag, or a CRC mismatch — everything before the stop
    /// point is trustworthy, everything after is unreachable by
    /// construction (records are appended strictly in order).
    pub fn replay(&self) -> Replay {
        let mut out = Replay::default();
        let mut at = 0usize;
        let mut seq = 0u64;
        while at < self.buf.len() {
            out.scanned += 1;
            if self.buf.len() - at < RECORD_BYTES {
                out.torn_tail = true;
                break;
            }
            let rec = &self.buf[at..at + RECORD_BYTES];
            let crc = u64::from_le_bytes(rec[RECORD_BYTES - 8..].try_into().expect("8 bytes"));
            let parity = rec[12] & PARITY_BIT != 0;
            let tag = CodecId::from_tag(rec[12] & !PARITY_BIT);
            let rec_seq = u64::from_le_bytes(rec[4..12].try_into().expect("8 bytes"));
            let valid = rec[..4] == MAGIC
                && rec_seq == seq
                && tag.is_some()
                && checksum64(&rec[..RECORD_BYTES - 8], seq) == crc;
            if !valid {
                out.torn_tail = true;
                break;
            }
            let u64_at = |o: usize| u64::from_le_bytes(rec[o..o + 8].try_into().expect("8 bytes"));
            out.entries.push(MappingEntry {
                tag: tag.expect("validated above"),
                run_start: u64_at(13),
                run_blocks: u32::from_le_bytes(rec[21..25].try_into().expect("4 bytes")),
                device_offset: u64_at(25),
                stored_bytes: u64_at(33),
                compressed_bytes: u64_at(41),
                checksum: u64_at(49),
                parity,
            });
            seq += 1;
            at += RECORD_BYTES;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(i: u64) -> MappingEntry {
        MappingEntry {
            tag: if i.is_multiple_of(2) { CodecId::Lz4 } else { CodecId::None },
            run_start: i * 7,
            run_blocks: 1 + (i as u32 % 5),
            device_offset: i * 4096,
            stored_bytes: 2048,
            compressed_bytes: 1500 + i,
            checksum: i.wrapping_mul(0xDEAD_BEEF),
            parity: i.is_multiple_of(3),
        }
    }

    #[test]
    fn round_trips_every_field() {
        let mut j = MappingJournal::new();
        let entries: Vec<MappingEntry> = (0..20).map(entry).collect();
        for e in &entries {
            j.append(e);
        }
        assert_eq!(j.records(), 20);
        assert_eq!(j.len_bytes(), 20 * RECORD_BYTES);
        let r = j.replay();
        assert!(!r.torn_tail);
        assert_eq!(r.scanned, 20);
        assert_eq!(r.entries, entries);
    }

    #[test]
    fn empty_journal_replays_empty() {
        let r = MappingJournal::new().replay();
        assert_eq!(r, Replay::default());
    }

    #[test]
    fn torn_tail_detected_and_prefix_kept() {
        let mut j = MappingJournal::new();
        for i in 0..5 {
            j.append(&entry(i));
        }
        // Tear mid-way through the last record.
        j.truncate_bytes(4 * RECORD_BYTES + 17);
        let r = j.replay();
        assert!(r.torn_tail);
        assert_eq!(r.entries.len(), 4);
        assert_eq!(r.scanned, 5);
        assert_eq!(r.entries, (0..4).map(entry).collect::<Vec<_>>());
    }

    #[test]
    fn corrupt_record_stops_replay() {
        let mut j = MappingJournal::new();
        for i in 0..6 {
            j.append(&entry(i));
        }
        // Flip one payload byte of record 3: its CRC no longer matches.
        j.buf[3 * RECORD_BYTES + 20] ^= 0xFF;
        let r = j.replay();
        assert!(r.torn_tail);
        assert_eq!(r.entries.len(), 3, "replay must stop before the damaged record");
    }

    #[test]
    fn bad_magic_stops_replay() {
        let mut j = MappingJournal::new();
        j.append(&entry(0));
        j.append(&entry(1));
        j.buf[RECORD_BYTES] = b'X'; // wreck record 1's magic (and its CRC input)
        let r = j.replay();
        assert!(r.torn_tail);
        assert_eq!(r.entries.len(), 1);
    }

    #[test]
    fn clear_resets() {
        let mut j = MappingJournal::new();
        j.append(&entry(0));
        j.clear();
        assert_eq!(j.records(), 0);
        assert_eq!(j.replay(), Replay::default());
    }
}
