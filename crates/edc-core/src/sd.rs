//! The Sequentiality Detector (paper §III-E, Fig. 7).
//!
//! Compressing each 4 KiB write on arrival forfeits the better ratio (and
//! lower per-byte cost) of compressing a larger unit, so EDC buffers
//! contiguous writes and compresses them as one merged block. The buffer
//! flushes when:
//!
//! * a **read** arrives (Fig. 7, order 4: reads break write contiguity),
//! * a **non-contiguous write** arrives (the new write starts a new buffer),
//! * the merge buffer reaches its size cap, or
//! * the oldest buffered write exceeds the flush timeout — the paper's
//!   prototype flushes only on the first two events, which is fine for
//!   bursty traces but would leave the last writes of a burst waiting
//!   until the next request; the timeout bounds that wait and is
//!   configurable (set it huge to reproduce the strict paper behaviour).

/// Sequentiality-detector configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SdConfig {
    /// Maximum merged size in 4 KiB blocks (default 16 = 64 KiB, matching
    /// the Bzip2-class block size and typical merge windows).
    pub max_merge_blocks: u32,
    /// Flush the buffer when its oldest write is this old (ns).
    pub timeout_ns: u64,
}

impl Default for SdConfig {
    fn default() -> Self {
        SdConfig { max_merge_blocks: 16, timeout_ns: 500_000 }
    }
}

/// A merged run of contiguous writes, ready to compress as one unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergedRun {
    /// First 4 KiB logical block.
    pub start_block: u64,
    /// Length in blocks.
    pub blocks: u32,
    /// Arrival time of each merged request (for latency accounting: every
    /// one of them completes when the run is flushed to flash).
    pub arrivals_ns: Vec<u64>,
}

impl MergedRun {
    /// Merged payload size in bytes.
    pub fn bytes(&self) -> u64 {
        u64::from(self.blocks) * 4096
    }

    /// Arrival of the oldest merged request.
    pub fn oldest_arrival_ns(&self) -> u64 {
        self.arrivals_ns.iter().copied().min().unwrap_or(0)
    }
}

/// The Sequentiality Detector.
///
/// ```
/// use edc_core::{SequentialityDetector, SdConfig};
///
/// let mut sd = SequentialityDetector::new(SdConfig::default());
/// assert!(sd.on_write(10, 1, 0).is_none()); // buffered
/// assert!(sd.on_write(11, 1, 1).is_none()); // contiguous: merged
/// let run = sd.on_write(99, 1, 2).unwrap(); // jump flushes the buffer
/// assert_eq!((run.start_block, run.blocks), (10, 2));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SequentialityDetector {
    config: SdConfig,
    current: Option<MergedRun>,
    /// Total writes observed / writes merged into an existing buffer.
    observed: u64,
    merged: u64,
}

impl SequentialityDetector {
    /// Create a detector.
    pub fn new(config: SdConfig) -> Self {
        assert!(config.max_merge_blocks >= 1);
        SequentialityDetector { config, ..Default::default() }
    }

    /// The active configuration.
    pub fn config(&self) -> &SdConfig {
        &self.config
    }

    /// Fraction of writes that were merged into a previously buffered run.
    pub fn merge_rate(&self) -> f64 {
        if self.observed == 0 {
            return 0.0;
        }
        self.merged as f64 / self.observed as f64
    }

    /// A write of `span_blocks` blocks starting at `start_block` arrives.
    /// Returns the *previous* buffer if this write flushed it (non-
    /// contiguous, or the merge would exceed the cap). The new write always
    /// ends up buffered (possibly merged into the surviving buffer).
    pub fn on_write(&mut self, start_block: u64, span_blocks: u32, arrival_ns: u64) -> Option<MergedRun> {
        assert!(span_blocks >= 1);
        self.observed += 1;
        match self.current.take() {
            None => {
                self.current = Some(MergedRun {
                    start_block,
                    blocks: span_blocks,
                    arrivals_ns: vec![arrival_ns],
                });
                None
            }
            Some(mut run) => {
                let contiguous = start_block == run.start_block + u64::from(run.blocks);
                let fits = run.blocks + span_blocks <= self.config.max_merge_blocks;
                if contiguous && fits {
                    run.blocks += span_blocks;
                    run.arrivals_ns.push(arrival_ns);
                    self.merged += 1;
                    self.current = Some(run);
                    None
                } else {
                    self.current = Some(MergedRun {
                        start_block,
                        blocks: span_blocks,
                        arrivals_ns: vec![arrival_ns],
                    });
                    Some(run)
                }
            }
        }
    }

    /// A read arrives: flush any buffer (reads break write sequentiality).
    pub fn on_read(&mut self) -> Option<MergedRun> {
        self.current.take()
    }

    /// If the buffered run has exceeded the timeout at `now_ns`, take it
    /// together with the time at which the flush is deemed to happen
    /// (`oldest arrival + timeout`, which may be earlier than `now_ns`).
    pub fn take_expired(&mut self, now_ns: u64) -> Option<(MergedRun, u64)> {
        let deadline = self.current.as_ref()?.oldest_arrival_ns() + self.config.timeout_ns;
        if now_ns >= deadline {
            Some((self.current.take().expect("checked above"), deadline))
        } else {
            None
        }
    }

    /// End of workload: surrender any remaining buffer.
    pub fn drain(&mut self) -> Option<MergedRun> {
        self.current.take()
    }

    /// Is a run currently buffered?
    pub fn has_pending(&self) -> bool {
        self.current.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sd() -> SequentialityDetector {
        SequentialityDetector::new(SdConfig::default())
    }

    #[test]
    fn figure7_scenario() {
        // Order: A1 A2 A3 (seq) B1 B2 (seq elsewhere) C1 D1 — per Fig. 7(b).
        let mut d = sd();
        assert_eq!(d.on_write(10, 1, 0), None); // A1: wait
        assert_eq!(d.on_write(11, 1, 1), None); // A2: merge
        assert_eq!(d.on_write(12, 1, 2), None); // A3: merge
        let a = d.on_write(50, 1, 3).expect("B1 flushes A1-3"); // compress A1-3
        assert_eq!(a.start_block, 10);
        assert_eq!(a.blocks, 3);
        assert_eq!(a.arrivals_ns, vec![0, 1, 2]);
        assert_eq!(d.on_write(51, 1, 4), None); // B2: merge
        let b = d.on_write(90, 1, 5).expect("C1 flushes B1-2");
        assert_eq!((b.start_block, b.blocks), (50, 2));
        let c = d.on_write(130, 1, 6).expect("D1 flushes C1");
        assert_eq!((c.start_block, c.blocks), (90, 1));
        let dd = d.drain().expect("D1 remains");
        assert_eq!((dd.start_block, dd.blocks), (130, 1));
    }

    #[test]
    fn read_flushes_buffer() {
        let mut d = sd();
        d.on_write(0, 1, 0);
        d.on_write(1, 1, 1);
        let run = d.on_read().expect("read flushes");
        assert_eq!(run.blocks, 2);
        assert!(!d.has_pending());
        assert_eq!(d.on_read(), None);
    }

    #[test]
    fn merge_cap_enforced() {
        let mut d = SequentialityDetector::new(SdConfig { max_merge_blocks: 4, timeout_ns: u64::MAX });
        for i in 0..4 {
            assert_eq!(d.on_write(i, 1, i), None, "block {i} should merge");
        }
        // Fifth contiguous write exceeds the cap: previous run flushes.
        let run = d.on_write(4, 1, 4).expect("cap flush");
        assert_eq!(run.blocks, 4);
        assert!(d.has_pending());
    }

    #[test]
    fn multi_block_writes_merge() {
        let mut d = sd();
        assert_eq!(d.on_write(0, 4, 0), None);
        assert_eq!(d.on_write(4, 4, 1), None);
        let run = d.drain().unwrap();
        assert_eq!(run.blocks, 8);
        assert_eq!(run.bytes(), 8 * 4096);
    }

    #[test]
    fn overlapping_write_is_not_contiguous() {
        let mut d = sd();
        d.on_write(0, 4, 0);
        // Overwrite of block 2 is not an append: flushes.
        let run = d.on_write(2, 1, 1);
        assert!(run.is_some());
    }

    #[test]
    fn backward_write_is_not_contiguous() {
        let mut d = sd();
        d.on_write(10, 1, 0);
        assert!(d.on_write(9, 1, 1).is_some());
    }

    #[test]
    fn timeout_expiry() {
        let mut d = SequentialityDetector::new(SdConfig { max_merge_blocks: 16, timeout_ns: 1000 });
        d.on_write(0, 1, 5000);
        assert!(d.take_expired(5500).is_none(), "not yet expired");
        let (run, at) = d.take_expired(7000).expect("expired");
        assert_eq!(run.blocks, 1);
        assert_eq!(at, 6000, "flush backdated to arrival + timeout");
        assert!(!d.has_pending());
    }

    #[test]
    fn merge_rate_accounting() {
        let mut d = sd();
        d.on_write(0, 1, 0);
        d.on_write(1, 1, 1);
        d.on_write(2, 1, 2);
        d.on_write(100, 1, 3);
        // 4 observed, 2 merged.
        assert!((d.merge_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_detector_drains_nothing() {
        let mut d = sd();
        assert_eq!(d.drain(), None);
        assert_eq!(d.take_expired(u64::MAX), None);
        assert_eq!(d.merge_rate(), 0.0);
    }
}
