//! Tiered trajectory telemetry: RRD-style keyframe decimation.
//!
//! A days-long soak run samples counters millions of times; keeping every
//! sample is O(N) memory and every plot of it is unreadable. A
//! [`TieredSeries`] keeps the *newest* samples at full resolution and
//! each older tier `k`-fold decimated:
//!
//! * tier 0 holds the most recent `tier_len` samples, stride 1;
//! * when tier 0 overflows, its oldest `k` samples collapse to one
//!   keyframe (the oldest of the group, so the series start stays
//!   anchored) promoted into tier 1 (stride `k`);
//! * tier `i` overflowing promotes into tier `i+1` (stride `k^i`),
//!   growing a new tier whenever needed.
//!
//! After `n` pushes, with `t = tier_len` and `T ≈ ⌈log_k(n/t)⌉ + 1`
//! materialized tiers, the structure holds at most `t · T` samples —
//! `O(t · log_k n)` memory — while still covering the entire run: recent
//! history sample-exact, the opening of the run at stride `k^(T-1)`.
//! Every retained point is a true sample (a *keyframe*), never an
//! average, so replayed trajectories pass through real observed states.

use std::collections::VecDeque;

/// One observation: a timestamp and a value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Sample time in nanoseconds (simulated or wall, caller's choice).
    pub t_ns: u64,
    /// Observed value.
    pub value: f64,
}

/// A bounded-memory time series with tiered k-fold decimation.
#[derive(Debug, Clone)]
pub struct TieredSeries {
    /// Capacity of each tier, in samples.
    tier_len: usize,
    /// Decimation factor between adjacent tiers.
    k: usize,
    /// `tiers[0]` is newest/full-resolution; higher tiers are older and
    /// sparser. Within a tier, front = oldest.
    tiers: Vec<VecDeque<Sample>>,
    pushed: u64,
}

impl TieredSeries {
    /// A series keeping `tier_len` samples per tier and decimating
    /// `k`-fold per tier boundary.
    ///
    /// # Panics
    ///
    /// Panics unless `tier_len >= k >= 2` (a tier must hold at least one
    /// whole decimation group).
    pub fn new(tier_len: usize, k: usize) -> Self {
        assert!(k >= 2, "decimation factor must be >= 2");
        assert!(tier_len >= k, "tier must hold at least one k-group");
        TieredSeries { tier_len, k, tiers: vec![VecDeque::new()], pushed: 0 }
    }

    /// Record one sample. Amortized O(1); worst case O(tiers).
    pub fn push(&mut self, t_ns: u64, value: f64) {
        self.pushed += 1;
        self.tiers[0].push_back(Sample { t_ns, value });
        let mut i = 0;
        while self.tiers[i].len() > self.tier_len {
            // Collapse the oldest k samples of this tier to their oldest
            // member and promote it.
            let keyframe = self.tiers[i][0];
            for _ in 0..self.k.min(self.tiers[i].len()) {
                self.tiers[i].pop_front();
            }
            if i + 1 == self.tiers.len() {
                self.tiers.push(VecDeque::new());
            }
            self.tiers[i + 1].push_back(keyframe);
            i += 1;
        }
    }

    /// Total samples ever pushed.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Samples currently retained across all tiers.
    pub fn len(&self) -> usize {
        self.tiers.iter().map(VecDeque::len).sum()
    }

    /// True when nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of tiers currently materialized.
    pub fn tier_count(&self) -> usize {
        self.tiers.len()
    }

    /// All retained samples in chronological order (oldest first): the
    /// sparsest tier leads, tier 0's full-resolution window closes.
    pub fn samples(&self) -> Vec<Sample> {
        let mut out = Vec::with_capacity(self.len());
        for tier in self.tiers.iter().rev() {
            out.extend(tier.iter().copied());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_series_is_lossless() {
        let mut s = TieredSeries::new(16, 4);
        for i in 0..16u64 {
            s.push(i, i as f64);
        }
        let pts = s.samples();
        assert_eq!(pts.len(), 16);
        assert!(pts.iter().enumerate().all(|(i, p)| p.t_ns == i as u64));
        assert_eq!(s.tier_count(), 1);
    }

    #[test]
    fn overflow_decimates_oldest_k_fold() {
        let mut s = TieredSeries::new(8, 2);
        for i in 0..24u64 {
            s.push(i, i as f64);
        }
        let pts = s.samples();
        // Chronological and strictly increasing in time.
        assert!(pts.windows(2).all(|w| w[0].t_ns < w[1].t_ns));
        // Newest tier_len-ish samples survive at full resolution.
        let newest: Vec<u64> = pts.iter().rev().take(4).map(|p| p.t_ns).collect();
        assert_eq!(newest, vec![23, 22, 21, 20]);
        // The very first sample is anchored forever (oldest-of-group rule).
        assert_eq!(pts[0].t_ns, 0);
        // Retention is sublinear.
        assert!(pts.len() < 24, "retained {} of 24", pts.len());
        assert_eq!(s.pushed(), 24);
    }

    #[test]
    fn memory_is_logarithmic_in_pushes() {
        let mut s = TieredSeries::new(32, 4);
        for i in 0..1_000_000u64 {
            s.push(i, (i % 97) as f64);
        }
        // ~log4(1e6/32) + 1 tiers of <= 32+k samples each.
        assert!(s.tier_count() <= 10, "{} tiers", s.tier_count());
        assert!(s.len() <= 32 * s.tier_count() + s.tier_count(), "{} samples", s.len());
        let pts = s.samples();
        assert!(pts.windows(2).all(|w| w[0].t_ns < w[1].t_ns));
        assert_eq!(pts[0].t_ns, 0, "series start anchored");
        assert_eq!(pts.last().unwrap().t_ns, 999_999, "newest sample exact");
    }

    #[test]
    fn every_retained_point_is_a_true_sample() {
        let mut s = TieredSeries::new(8, 2);
        for i in 0..500u64 {
            s.push(i * 10, (i * 3) as f64);
        }
        for p in s.samples() {
            assert_eq!(p.t_ns % 10, 0);
            assert_eq!(p.value, (p.t_ns / 10 * 3) as f64, "interpolated point leaked in");
        }
    }

    #[test]
    #[should_panic(expected = "decimation factor")]
    fn k_below_two_rejected() {
        TieredSeries::new(8, 1);
    }
}
