//! Adaptive threshold feedback (paper Fig. 6).
//!
//! The paper sketches a *feedback mechanism* around the selector: the
//! monitor's calculated IOPS feeds the algorithm choice, and "the latency
//! involved in the data compression is also considered in the feedback".
//! The static ladder needs its knees hand-tuned per device (Fig. 12 is
//! that tuning); this module closes the loop instead: a controller
//! observes the compression engine's *backlog* (how far behind arrival
//! the CPU is running) and scales the ladder thresholds — sustained
//! backlog shrinks the compression bands (protecting latency), sustained
//! slack grows them back (harvesting idle cycles for ratio).
//!
//! This is a faithful elaboration of Fig. 6 rather than a paper mechanism
//! with published constants; the `ablate_feedback` experiment compares it
//! against the hand-tuned static ladder.

use crate::selector::{AlgorithmSelector, SelectorConfig};
use edc_compress::CodecId;

/// Controller configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeedbackConfig {
    /// Backlog (ns of queued CPU work) above which bands shrink.
    pub high_backlog_ns: u64,
    /// Backlog below which bands may grow back.
    pub low_backlog_ns: u64,
    /// Multiplicative shrink factor applied on pressure (< 1).
    pub shrink: f64,
    /// Multiplicative recovery factor applied on slack (> 1).
    pub grow: f64,
    /// Lower clamp on the scale (never shrink bands below this fraction).
    pub min_scale: f64,
    /// Controller decision interval (ns).
    pub interval_ns: u64,
}

impl Default for FeedbackConfig {
    fn default() -> Self {
        FeedbackConfig {
            high_backlog_ns: 2_000_000,  // 2 ms of queued compression work
            low_backlog_ns: 200_000,     // 0.2 ms
            shrink: 0.7,
            grow: 1.1,
            min_scale: 0.05,
            interval_ns: 100_000_000, // re-evaluate every 100 ms
        }
    }
}

/// The adaptive selector: a base ladder whose thresholds are scaled by a
/// feedback-driven factor in `[min_scale, 1.0]`.
#[derive(Debug, Clone)]
pub struct FeedbackSelector {
    base: SelectorConfig,
    config: FeedbackConfig,
    scale: f64,
    last_decision_ns: u64,
    /// Count of shrink/grow adjustments (for reporting).
    adjustments: u64,
}

impl FeedbackSelector {
    /// Wrap a base ladder with the feedback controller.
    pub fn new(base: SelectorConfig, config: FeedbackConfig) -> Self {
        base.validate();
        assert!(config.shrink > 0.0 && config.shrink < 1.0);
        assert!(config.grow > 1.0);
        assert!((0.0..1.0).contains(&config.min_scale));
        assert!(config.interval_ns > 0);
        FeedbackSelector { base, config, scale: 1.0, last_decision_ns: 0, adjustments: 0 }
    }

    /// Current threshold scale (1.0 = the base ladder).
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Number of adjustments made so far.
    pub fn adjustments(&self) -> u64 {
        self.adjustments
    }

    /// Feed an observation: `now_ns` and the compression engine's backlog
    /// (earliest worker-free time minus now, clamped at zero). Call on
    /// every flush; the controller acts at most once per interval.
    pub fn observe(&mut self, now_ns: u64, backlog_ns: u64) {
        if now_ns < self.last_decision_ns + self.config.interval_ns {
            return;
        }
        self.last_decision_ns = now_ns;
        if backlog_ns > self.config.high_backlog_ns {
            let new = (self.scale * self.config.shrink).max(self.config.min_scale);
            if new != self.scale {
                self.scale = new;
                self.adjustments += 1;
            }
        } else if backlog_ns < self.config.low_backlog_ns {
            let new = (self.scale * self.config.grow).min(1.0);
            if new != self.scale {
                self.scale = new;
                self.adjustments += 1;
            }
        }
    }

    /// Select a codec for the current intensity, under the scaled ladder.
    pub fn select(&self, calc_iops: f64) -> CodecId {
        // Scaling the thresholds down by `scale` is equivalent to scaling
        // the observed intensity up by 1/scale.
        let scaled = AlgorithmSelector::new(self.base.clone());
        scaled.select(calc_iops / self.scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn selector() -> FeedbackSelector {
        FeedbackSelector::new(SelectorConfig::two_level(1000.0, 4000.0), FeedbackConfig::default())
    }

    #[test]
    fn starts_at_base_ladder() {
        let s = selector();
        assert_eq!(s.scale(), 1.0);
        assert_eq!(s.select(500.0), CodecId::Deflate);
        assert_eq!(s.select(2000.0), CodecId::Lzf);
        assert_eq!(s.select(5000.0), CodecId::None);
    }

    #[test]
    fn backlog_shrinks_bands() {
        let mut s = selector();
        s.observe(200_000_000, 10_000_000); // heavy backlog
        assert!(s.scale() < 1.0);
        // 900 calc-IOPS was Gzip under the base ladder; with shrunken
        // bands it falls into the Lzf band (900 / 0.7 > 1000).
        assert_eq!(s.select(900.0), CodecId::Lzf);
        assert_eq!(s.adjustments(), 1);
    }

    #[test]
    fn slack_recovers_bands() {
        let mut s = selector();
        // Shrink hard first.
        for i in 1..10u64 {
            s.observe(i * 200_000_000, 10_000_000);
        }
        let low = s.scale();
        assert!(low < 0.2, "scale {low}");
        // Then sustained slack recovers toward 1.0.
        for i in 10..80u64 {
            s.observe(i * 200_000_000, 0);
        }
        assert!(s.scale() > low);
        assert!(s.scale() <= 1.0);
    }

    #[test]
    fn interval_rate_limits_decisions() {
        let mut s = selector();
        s.observe(200_000_000, 10_000_000);
        let after_first = s.scale();
        // Immediately again: ignored (within the interval).
        s.observe(200_000_001, 10_000_000);
        assert_eq!(s.scale(), after_first);
        // After the interval: acts.
        s.observe(400_000_000, 10_000_000);
        assert!(s.scale() < after_first);
    }

    #[test]
    fn scale_clamped_to_min() {
        let mut s = selector();
        for i in 1..1000u64 {
            s.observe(i * 200_000_000, u64::MAX / 2);
        }
        assert!(s.scale() >= FeedbackConfig::default().min_scale - 1e-12);
        // Even fully shrunk, genuinely idle periods still compress.
        assert_eq!(s.select(1.0), CodecId::Deflate);
    }

    #[test]
    fn moderate_backlog_holds_steady() {
        let mut s = selector();
        let cfg = FeedbackConfig::default();
        let mid = (cfg.high_backlog_ns + cfg.low_backlog_ns) / 2;
        for i in 1..20u64 {
            s.observe(i * 200_000_000, mid);
        }
        assert_eq!(s.scale(), 1.0, "dead band must not adjust");
        assert_eq!(s.adjustments(), 0);
    }

    #[test]
    #[should_panic]
    fn bad_config_rejected() {
        let _ = FeedbackSelector::new(
            SelectorConfig::two_level(1000.0, 4000.0),
            FeedbackConfig { shrink: 1.5, ..FeedbackConfig::default() },
        );
    }
}
