//! Deterministic record/replay: the `.edcrr` log format.
//!
//! A [`Recorder`] captures every [`Op`] dispatched to a [`Store`],
//! together with the timestamp drawn from the [`Clock`] and a digest of
//! the op's observable
//! output, into a compact length-prefixed binary log. A [`Replayer`]
//! rebuilds a fresh store from the log's [`StoreSpec`] header, re-applies
//! every op with the recorded timestamps, and diffs the output digests —
//! any fuzz crash, power-cut loss, or fault-campaign anomaly becomes a
//! replayable artifact and a golden test, the same trick `wasm-rr` uses.
//!
//! Determinism rests on three design decisions made elsewhere:
//! timestamps are recorded inputs (not sampled by the store), fault
//! decisions are a pure function of `(seed, draw counter)`
//! ([`edc_flash::FaultState`]), and parallel compression is bit-identical
//! to serial. Given those, `(spec, ops, timestamps)` determines every
//! observable output, so a digest mismatch on replay is a real
//! behavioural divergence — a changed codec choice, allocation, fault
//! landing point, or recovered state.
//!
//! ## Wire format
//!
//! ```text
//! header:  magic "EDCRR2\0\0" | StoreSpec (93 B fixed) | crc64(header)
//! record:  payload_len u32 | payload | crc64(payload, seq)
//! payload: now_ns u64 | op_len u32 | op bytes | output tag u8 | output digest u64
//! ```
//!
//! All integers little-endian. Each record's CRC is seeded with its
//! sequence number (like the mapping journal), so reordered or truncated
//! records surface as a torn tail, never as silent misparse.

use crate::clock::Clock;
use crate::pipeline::{EdcPipeline, PipelineConfig};
use crate::shard::{ShardConfig, ShardedPipeline};
use crate::store::{Op, OpOutput, Store};
use edc_compress::checksum64;
use edc_flash::{FaultPlan, FAULT_PLAN_BYTES};

/// Magic bytes opening every `.edcrr` log. Bumped to `EDCRR2` when the
/// spec grew its dedup flag byte; v1 logs no longer parse (re-record).
pub const MAGIC: [u8; 8] = *b"EDCRR2\0\0";

/// Fixed encoded size of a [`StoreSpec`].
pub const SPEC_BYTES: usize = 40 + FAULT_PLAN_BYTES;

/// Everything needed to rebuild the recorded store from scratch.
///
/// The spec pins the store *shape* (capacity, sharding, cache, parity,
/// heat policy, fault plan); tuning knobs that don't change observable
/// behaviour digests (worker count aside, which is recorded anyway for
/// faithfulness) ride along. The codec ladder is either the paper
/// default or, with [`StoreSpec::fast_ladder`], pinned to the fast
/// rung; estimator and allocator use defaults — campaigns that need
/// anything fancier replay via [`Replayer::replay_against`] with their
/// own store.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoreSpec {
    /// Device capacity in bytes (split evenly across shards).
    pub capacity_bytes: u64,
    /// Shard count; `0` builds a plain [`EdcPipeline`], `1..=16` a
    /// [`ShardedPipeline`].
    pub shards: u32,
    /// Extent size in 4 KiB blocks (sharded stores only).
    pub extent_blocks: u64,
    /// Compression worker threads (bit-identical results at any value).
    pub workers: u32,
    /// Read-cache capacity in runs (0 disables).
    pub cache_runs: u32,
    /// Store an XOR parity page with every run.
    pub parity: bool,
    /// Enable heat tracking / background recompression.
    pub heat_enabled: bool,
    /// Enable the content-defined dedup front-end.
    pub dedup: bool,
    /// Pin the codec ladder to its fast rung (Lzf at every IOPS level)
    /// instead of the paper-default elastic ladder. Fixtures that
    /// exercise background recompression record with this set so the
    /// write path leaves headroom for the pass to upgrade cold runs.
    pub fast_ladder: bool,
    /// Heat decay half-life in simulated ns.
    pub heat_half_life_ns: u64,
    /// Initial fault plan (later plans arrive as
    /// [`Op::SetFaultPlan`] records).
    pub fault: FaultPlan,
}

impl Default for StoreSpec {
    fn default() -> Self {
        StoreSpec {
            capacity_bytes: 64 << 20,
            shards: 0,
            extent_blocks: 64,
            workers: 1,
            cache_runs: 32,
            parity: false,
            heat_enabled: true,
            dedup: false,
            fast_ladder: false,
            heat_half_life_ns: 1_000_000_000,
            fault: FaultPlan::none(),
        }
    }
}

impl StoreSpec {
    /// Fixed-width encoding (see [`SPEC_BYTES`]).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(SPEC_BYTES);
        out.extend_from_slice(&self.capacity_bytes.to_le_bytes());
        out.extend_from_slice(&self.shards.to_le_bytes());
        out.extend_from_slice(&self.extent_blocks.to_le_bytes());
        out.extend_from_slice(&self.workers.to_le_bytes());
        out.extend_from_slice(&self.cache_runs.to_le_bytes());
        out.push(self.parity as u8);
        out.push(self.heat_enabled as u8);
        out.push(self.dedup as u8);
        out.push(self.fast_ladder as u8);
        out.extend_from_slice(&self.heat_half_life_ns.to_le_bytes());
        out.extend_from_slice(&self.fault.encode());
        debug_assert_eq!(out.len(), SPEC_BYTES);
        out
    }

    /// Inverse of [`StoreSpec::encode`]; `None` on short input or invalid
    /// flag bytes.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < SPEC_BYTES {
            return None;
        }
        let u64_at = |i: usize| u64::from_le_bytes(bytes[i..i + 8].try_into().unwrap());
        let u32_at = |i: usize| u32::from_le_bytes(bytes[i..i + 4].try_into().unwrap());
        if bytes[28] > 1 || bytes[29] > 1 || bytes[30] > 1 || bytes[31] > 1 {
            return None;
        }
        Some(StoreSpec {
            capacity_bytes: u64_at(0),
            shards: u32_at(8),
            extent_blocks: u64_at(12),
            workers: u32_at(20),
            cache_runs: u32_at(24),
            parity: bytes[28] == 1,
            heat_enabled: bytes[29] == 1,
            dedup: bytes[30] == 1,
            fast_ladder: bytes[31] == 1,
            heat_half_life_ns: u64_at(32),
            fault: FaultPlan::decode(&bytes[40..40 + FAULT_PLAN_BYTES])?,
        })
    }

    /// The pipeline configuration this spec describes (defaults for the
    /// codec ladder, estimator and allocator).
    pub fn pipeline_config(&self) -> PipelineConfig {
        let selector = if self.fast_ladder {
            crate::selector::SelectorConfig {
                rungs: vec![crate::selector::LadderRung {
                    max_calc_iops: f64::INFINITY,
                    codec: edc_compress::CodecId::Lzf,
                }],
            }
        } else {
            crate::selector::SelectorConfig::default()
        };
        PipelineConfig {
            workers: self.workers.max(1) as usize,
            cache_runs: self.cache_runs as usize,
            parity: self.parity,
            fault: self.fault,
            selector,
            dedup: crate::dedup::DedupConfig {
                enabled: self.dedup,
                ..crate::dedup::DedupConfig::default()
            },
            heat: crate::heat::HeatConfig {
                enabled: self.heat_enabled,
                half_life_ns: self.heat_half_life_ns.max(1),
                ..crate::heat::HeatConfig::default()
            },
            ..PipelineConfig::default()
        }
    }

    /// Build a fresh store of the recorded shape.
    ///
    /// # Panics
    ///
    /// Panics if the spec violates store invariants (shards > 16,
    /// capacity below one block per shard) — validate specs from
    /// untrusted bytes with [`StoreSpec::validate`] first.
    pub fn build(&self) -> Box<dyn Store> {
        if self.shards == 0 {
            Box::new(EdcPipeline::new(self.capacity_bytes, self.pipeline_config()))
        } else {
            Box::new(ShardedPipeline::new(
                self.capacity_bytes,
                ShardConfig {
                    shards: self.shards as usize,
                    extent_blocks: self.extent_blocks,
                    pipeline: self.pipeline_config(),
                },
            ))
        }
    }

    /// Check the spec can be built without panicking.
    pub fn validate(&self) -> Result<(), String> {
        if self.shards > 16 {
            return Err(format!("shard count {} exceeds 16", self.shards));
        }
        if self.shards > 0 && self.extent_blocks == 0 {
            return Err("extent_blocks must be >= 1".to_string());
        }
        let ways = u64::from(self.shards.max(1));
        if self.capacity_bytes / ways < crate::scheme::BLOCK_BYTES {
            return Err("capacity below one block per shard".to_string());
        }
        for rate in [
            self.fault.read_error_rate,
            self.fault.program_error_rate,
            self.fault.erase_error_rate,
            self.fault.bit_rot_rate,
        ] {
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("fault rate {rate} outside [0, 1]"));
            }
        }
        Ok(())
    }
}

/// Appends `(now_ns, op, output digest)` records to an in-memory
/// `.edcrr` log.
pub struct Recorder {
    spec: StoreSpec,
    buf: Vec<u8>,
    ops: u64,
}

impl Recorder {
    /// Start a log for a store built from `spec` (the header is written
    /// immediately).
    pub fn new(spec: StoreSpec) -> Self {
        let mut buf = Vec::with_capacity(256);
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&spec.encode());
        let crc = checksum64(&buf, 0);
        buf.extend_from_slice(&crc.to_le_bytes());
        Recorder { spec, buf, ops: 0 }
    }

    /// The spec this log opens with.
    pub fn spec(&self) -> &StoreSpec {
        &self.spec
    }

    /// Append one already-dispatched op with its drawn timestamp and
    /// observed output.
    pub fn record(&mut self, now_ns: u64, op: &Op, output: &OpOutput) {
        let mut payload = Vec::with_capacity(32);
        payload.extend_from_slice(&now_ns.to_le_bytes());
        let op_bytes = op.encode();
        payload.extend_from_slice(&(op_bytes.len() as u32).to_le_bytes());
        payload.extend_from_slice(&op_bytes);
        payload.push(output.tag());
        payload.extend_from_slice(&output.digest().to_le_bytes());
        self.buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        let crc = checksum64(&payload, self.ops);
        self.buf.extend_from_slice(&payload);
        self.buf.extend_from_slice(&crc.to_le_bytes());
        self.ops += 1;
    }

    /// Draw a timestamp from `clock`, dispatch `op` against `store`,
    /// record the outcome, and hand the output back — the one-liner that
    /// makes any driver loop a recorded driver loop.
    pub fn apply<S: Store + ?Sized>(
        &mut self,
        store: &mut S,
        clock: &mut impl Clock,
        op: &Op,
    ) -> OpOutput {
        let now_ns = clock.now_ns();
        let output = store.dispatch(now_ns, op);
        self.record(now_ns, op, &output);
        output
    }

    /// Ops recorded so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// The complete log bytes (header + records).
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consume the recorder, returning the log bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Write the log to `path` (conventionally `*.edcrr`).
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, &self.buf)
    }
}

/// One parsed log record.
#[derive(Debug, Clone, PartialEq)]
pub struct LogRecord {
    /// Timestamp drawn for the op.
    pub now_ns: u64,
    /// The op itself.
    pub op: Op,
    /// Wire tag of the recorded output variant.
    pub output_tag: u8,
    /// Digest of the recorded output.
    pub output_digest: u64,
}

/// A fully parsed `.edcrr` log.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedLog {
    /// The store shape recorded in the header.
    pub spec: StoreSpec,
    /// Every intact record, in order.
    pub records: Vec<LogRecord>,
    /// Whether parsing stopped at a truncated or corrupt record; the
    /// records before the tear are trustworthy (per-record CRCs).
    pub torn_tail: bool,
}

/// Parse a `.edcrr` log. A bad header is an error; a torn record tail is
/// tolerated and flagged ([`ParsedLog::torn_tail`]).
pub fn parse(bytes: &[u8]) -> Result<ParsedLog, String> {
    let header_len = MAGIC.len() + SPEC_BYTES;
    if bytes.len() < header_len + 8 {
        return Err("log shorter than the header".to_string());
    }
    if bytes[..MAGIC.len()] != MAGIC {
        return Err("bad magic (not an .edcrr log)".to_string());
    }
    let crc = u64::from_le_bytes(bytes[header_len..header_len + 8].try_into().unwrap());
    if checksum64(&bytes[..header_len], 0) != crc {
        return Err("header checksum mismatch".to_string());
    }
    let spec = StoreSpec::decode(&bytes[MAGIC.len()..header_len])
        .ok_or_else(|| "invalid store spec".to_string())?;
    spec.validate()?;

    let mut records = Vec::new();
    let mut torn_tail = false;
    let mut at = header_len + 8;
    let mut seq = 0u64;
    while at < bytes.len() {
        let parsed = (|| {
            let len_bytes = bytes.get(at..at + 4)?;
            let payload_len = u32::from_le_bytes(len_bytes.try_into().unwrap()) as usize;
            let payload = bytes.get(at + 4..at + 4 + payload_len)?;
            let crc_bytes = bytes.get(at + 4 + payload_len..at + 12 + payload_len)?;
            let crc = u64::from_le_bytes(crc_bytes.try_into().unwrap());
            if checksum64(payload, seq) != crc {
                return None;
            }
            if payload.len() < 21 {
                return None;
            }
            let now_ns = u64::from_le_bytes(payload[..8].try_into().unwrap());
            let op_len = u32::from_le_bytes(payload[8..12].try_into().unwrap()) as usize;
            let op_bytes = payload.get(12..12 + op_len)?;
            let tail = payload.get(12 + op_len..)?;
            if tail.len() != 9 {
                return None;
            }
            let op = Op::decode(op_bytes)?;
            Some((
                LogRecord {
                    now_ns,
                    op,
                    output_tag: tail[0],
                    output_digest: u64::from_le_bytes(tail[1..9].try_into().unwrap()),
                },
                at + 12 + payload_len,
            ))
        })();
        match parsed {
            Some((rec, next)) => {
                records.push(rec);
                at = next;
                seq += 1;
            }
            None => {
                torn_tail = true;
                break;
            }
        }
    }
    Ok(ParsedLog { spec, records, torn_tail })
}

/// One point where a replayed output differed from the recorded one.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Record index (0-based) within the log.
    pub index: u64,
    /// Kind of the diverging op (see [`Op::kind`]).
    pub op: String,
    /// Output variant tag recorded at capture time.
    pub expected_tag: u8,
    /// Output digest recorded at capture time.
    pub expected_digest: u64,
    /// The output the replay actually produced.
    pub actual: OpOutput,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "op #{} ({}): recorded output tag {} digest {:#018x}, replay produced {} digest {:#018x}",
            self.index,
            self.op,
            self.expected_tag,
            self.expected_digest,
            self.actual.kind(),
            self.actual.digest()
        )
    }
}

/// What a replay found.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ReplayReport {
    /// Ops re-executed.
    pub ops: u64,
    /// Every output mismatch, in log order.
    pub divergences: Vec<Divergence>,
    /// Whether the log ended in a torn/corrupt record (the intact prefix
    /// was still replayed).
    pub torn_tail: bool,
}

impl ReplayReport {
    /// True when the replay was bit-exact: no divergence, no torn tail.
    pub fn is_exact(&self) -> bool {
        self.divergences.is_empty() && !self.torn_tail
    }
}

/// Why [`Replayer::replay_as`] refused to run a log.
///
/// Replaying a log against a store of a different *shape* than the one
/// it was recorded on — different capacity, sharding, parity layout, or
/// fault plan — produces a wall of digest divergences that look like
/// behavioural regressions but are really a harness mistake. Array
/// campaigns hit this first: a RAIS-backed store presents a different
/// geometry than the single-device specs all existing goldens were
/// recorded against, so the replay layer refuses up front with a typed
/// error instead of diverging op by op.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayRefusal {
    /// The log bytes failed to parse (bad magic, torn header, invalid
    /// spec) — same failures [`parse`] reports.
    Parse(String),
    /// The target store's shape disagrees with the spec the log was
    /// recorded against on a behaviour-determining field.
    SpecMismatch {
        /// Name of the first disagreeing [`StoreSpec`] field.
        field: &'static str,
        /// The value the log was recorded with.
        recorded: String,
        /// The value the replay target declares.
        actual: String,
    },
}

impl std::fmt::Display for ReplayRefusal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayRefusal::Parse(e) => write!(f, "log does not parse: {e}"),
            ReplayRefusal::SpecMismatch { field, recorded, actual } => write!(
                f,
                "replay target shape disagrees with the recorded spec: \
                 {field} was recorded as {recorded}, target declares {actual}"
            ),
        }
    }
}

impl std::error::Error for ReplayRefusal {}

impl StoreSpec {
    /// Check that a store built from `self` can faithfully replay a log
    /// recorded against `recorded`, reporting the first disagreeing
    /// shape field as a typed [`ReplayRefusal::SpecMismatch`].
    ///
    /// Every field except `workers` is compared: worker count is the one
    /// knob documented to be bit-identical at any value, so it may
    /// legitimately differ between capture and replay machines.
    pub fn require_matches(&self, recorded: &StoreSpec) -> Result<(), ReplayRefusal> {
        macro_rules! same {
            ($field:ident) => {
                if self.$field != recorded.$field {
                    return Err(ReplayRefusal::SpecMismatch {
                        field: stringify!($field),
                        recorded: format!("{:?}", recorded.$field),
                        actual: format!("{:?}", self.$field),
                    });
                }
            };
        }
        same!(capacity_bytes);
        same!(shards);
        same!(extent_blocks);
        same!(cache_runs);
        same!(parity);
        same!(heat_enabled);
        same!(dedup);
        same!(fast_ladder);
        same!(heat_half_life_ns);
        same!(fault);
        Ok(())
    }
}

/// Re-executes `.edcrr` logs against fresh stores.
pub struct Replayer;

impl Replayer {
    /// Parse `bytes`, rebuild the recorded store shape, and re-dispatch
    /// every op with its recorded timestamp, diffing output digests.
    pub fn replay(bytes: &[u8]) -> Result<ReplayReport, String> {
        let log = parse(bytes)?;
        let mut store = log.spec.build();
        Ok(Self::replay_against(store.as_mut(), &log))
    }

    /// Replay `bytes` onto a fresh store built from `target`, refusing
    /// with a typed [`ReplayRefusal`] when `target`'s shape disagrees
    /// with the spec the log was recorded against.
    ///
    /// This is the entry point for harnesses that *declare* the store
    /// they intend to replay on (an array-backed campaign, a re-shaped
    /// fuzz target): a log captured on a single-device spec is rejected
    /// before the first op is dispatched, instead of replaying into a
    /// wall of meaningless digest divergences.
    pub fn replay_as(target: &StoreSpec, bytes: &[u8]) -> Result<ReplayReport, ReplayRefusal> {
        let log = parse(bytes).map_err(ReplayRefusal::Parse)?;
        target.require_matches(&log.spec)?;
        let mut store = target.build();
        Ok(Self::replay_against(store.as_mut(), &log))
    }

    /// Replay an already-parsed log against a caller-provided store —
    /// the hook for stores with non-default ladders or estimators. The
    /// store must be freshly built to the same shape the log records, or
    /// every digest will (rightly) diverge.
    pub fn replay_against(store: &mut dyn Store, log: &ParsedLog) -> ReplayReport {
        let mut report =
            ReplayReport { ops: 0, divergences: Vec::new(), torn_tail: log.torn_tail };
        for (i, rec) in log.records.iter().enumerate() {
            let output = store.dispatch(rec.now_ns, &rec.op);
            report.ops += 1;
            if output.digest() != rec.output_digest || output.tag() != rec.output_tag {
                report.divergences.push(Divergence {
                    index: i as u64,
                    op: rec.op.kind().to_string(),
                    expected_tag: rec.output_tag,
                    expected_digest: rec.output_digest,
                    actual: output,
                });
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    #[test]
    fn spec_round_trips() {
        let spec = StoreSpec {
            capacity_bytes: 128 << 20,
            shards: 8,
            extent_blocks: 32,
            workers: 4,
            cache_runs: 64,
            parity: true,
            heat_enabled: false,
            dedup: true,
            fast_ladder: true,
            heat_half_life_ns: 77,
            fault: FaultPlan { seed: 3, read_error_rate: 0.01, ..FaultPlan::none() },
        };
        assert_eq!(StoreSpec::decode(&spec.encode()), Some(spec));
        assert_eq!(StoreSpec::decode(&[0u8; SPEC_BYTES - 1]), None);
    }

    fn drive(spec: StoreSpec) -> Vec<u8> {
        let mut store = spec.build();
        let mut clock = ManualClock::new(0, 1_000_000);
        let mut rec = Recorder::new(spec);
        let ops = [
            Op::Write { offset: 0, data: vec![0x41; 16384] },
            Op::Write { offset: 16384, data: (0..4096u32).flat_map(|i| (i as u8).to_le_bytes()).collect() },
            Op::Flush,
            Op::Read { offset: 0, len: 16384 },
            Op::Stats,
            Op::PowerCut,
            Op::Read { offset: 0, len: 4096 },
            Op::Recover,
            Op::Read { offset: 0, len: 16384 },
            Op::Stats,
        ];
        for op in &ops {
            rec.apply(store.as_mut(), &mut clock, op);
        }
        rec.into_bytes()
    }

    #[test]
    fn record_replay_is_bit_exact_plain_and_sharded() {
        for shards in [0u32, 4] {
            let bytes = drive(StoreSpec { shards, ..StoreSpec::default() });
            let report = Replayer::replay(&bytes).expect("parse");
            assert_eq!(report.ops, 10);
            assert!(report.is_exact(), "divergences: {:?}", report.divergences);
        }
    }

    #[test]
    fn tampered_log_data_diverges_on_replay() {
        let bytes = drive(StoreSpec::default());
        let log = parse(&bytes).unwrap();
        // Flip one payload byte of the first write op and re-record the
        // log (fresh CRCs), keeping the captured digests: the replay must
        // notice the read/stats outputs no longer match.
        let mut rec = Recorder::new(log.spec);
        for (i, r) in log.records.iter().enumerate() {
            let mut op = r.op.clone();
            if i == 0 {
                if let Op::Write { data, .. } = &mut op {
                    data[0] ^= 1;
                }
            }
            // Re-encode with the original digests.
            let mut payload = Vec::new();
            payload.extend_from_slice(&r.now_ns.to_le_bytes());
            let op_bytes = op.encode();
            payload.extend_from_slice(&(op_bytes.len() as u32).to_le_bytes());
            payload.extend_from_slice(&op_bytes);
            payload.push(r.output_tag);
            payload.extend_from_slice(&r.output_digest.to_le_bytes());
            rec.buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            let crc = checksum64(&payload, rec.ops);
            rec.buf.extend_from_slice(&payload);
            rec.buf.extend_from_slice(&crc.to_le_bytes());
            rec.ops += 1;
        }
        let report = Replayer::replay(rec.bytes()).expect("parse");
        assert!(!report.divergences.is_empty(), "tampered write went unnoticed");
    }

    #[test]
    fn torn_tail_is_flagged_and_prefix_replays() {
        let bytes = drive(StoreSpec::default());
        let cut = bytes.len() - 5;
        let log = parse(&bytes[..cut]).unwrap();
        assert!(log.torn_tail);
        assert_eq!(log.records.len(), 9, "all complete records kept");
        let report = Replayer::replay(&bytes[..cut]).expect("parse");
        assert!(report.torn_tail);
        assert!(report.divergences.is_empty());
        assert!(!report.is_exact());
    }

    #[test]
    fn corrupt_header_is_an_error() {
        let mut bytes = drive(StoreSpec::default());
        bytes[3] ^= 0xFF;
        assert!(Replayer::replay(&bytes).is_err());
        let mut bytes2 = drive(StoreSpec::default());
        bytes2[MAGIC.len() + 2] ^= 0xFF; // spec byte: header CRC catches it
        assert!(Replayer::replay(&bytes2).is_err());
        assert!(Replayer::replay(&bytes2[..10]).is_err());
    }

    #[test]
    fn mismatched_target_spec_is_refused_not_diverged() {
        let recorded = StoreSpec::default();
        let bytes = drive(recorded);
        // Same shape replays fine — and a different worker count is
        // explicitly allowed (bit-identical by design).
        let same = StoreSpec { workers: 8, ..recorded };
        let report = Replayer::replay_as(&same, &bytes).expect("same shape accepted");
        assert!(report.is_exact());
        // A differently-shaped target (what an array-backed campaign
        // would declare) is refused with a typed error naming the field.
        let reshaped = StoreSpec { shards: 4, capacity_bytes: 256 << 20, ..recorded };
        match Replayer::replay_as(&reshaped, &bytes) {
            Err(ReplayRefusal::SpecMismatch { field, .. }) => {
                assert_eq!(field, "capacity_bytes");
            }
            other => panic!("expected a spec mismatch, got {other:?}"),
        }
        // Garbage bytes surface as a typed parse refusal.
        assert!(matches!(
            Replayer::replay_as(&recorded, b"not a log"),
            Err(ReplayRefusal::Parse(_))
        ));
    }

    #[test]
    fn faulty_run_with_cut_and_recovery_replays_exactly() {
        let spec = StoreSpec {
            shards: 2,
            parity: true,
            fault: FaultPlan {
                seed: 1234,
                read_error_rate: 0.05,
                bit_rot_rate: 0.02,
                read_retries: 2,
                allow_degraded_reads: true,
                ..FaultPlan::none()
            },
            ..StoreSpec::default()
        };
        let mut store = spec.build();
        let mut clock = ManualClock::new(0, 500_000);
        let mut rec = Recorder::new(spec);
        for i in 0..24u64 {
            let fill = vec![(i % 251) as u8; 8192];
            rec.apply(store.as_mut(), &mut clock, &Op::Write { offset: i * 8192, data: fill });
        }
        rec.apply(store.as_mut(), &mut clock, &Op::Flush);
        for i in 0..24u64 {
            rec.apply(store.as_mut(), &mut clock, &Op::Read { offset: i * 8192, len: 8192 });
        }
        rec.apply(store.as_mut(), &mut clock, &Op::PowerCut);
        rec.apply(store.as_mut(), &mut clock, &Op::Recover);
        rec.apply(store.as_mut(), &mut clock, &Op::Scrub);
        rec.apply(store.as_mut(), &mut clock, &Op::Stats);
        let report = Replayer::replay(rec.bytes()).expect("parse");
        assert!(report.is_exact(), "divergences: {:?}", report.divergences);
    }
}
