//! The storage schemes under evaluation: Native, fixed compression, and
//! EDC itself — as [`StorageScheme`] implementations for the trace-replay
//! simulator.
//!
//! One engine ([`SimScheme`]) hosts all three policies so that space and
//! latency accounting are identical and only the compression *policy*
//! differs (exactly the comparison the paper's §IV makes):
//!
//! * [`Policy::Native`] — writes pass through untouched.
//! * [`Policy::Fixed`] — every write is compressed with one codec, inline,
//!   at arrival ("the latest flash-based storage products with always-on
//!   inline compression for all workloads").
//! * [`Policy::Elastic`] — the EDC pipeline: workload monitor →
//!   sequentiality detector → compressibility check → threshold-ladder
//!   codec selection → quantized allocation (paper Fig. 4).
//!
//! Compressed sizes come from the [`ContentModel`] (calibrated on this
//! crate's real codecs over SDGen-like content) and CPU time from the
//! [`CostModel`], so replay is deterministic and fast while anchored to
//! measured codec behaviour.

use crate::allocator::{AllocPolicy, AllocStats, QuantizedAllocator};
use crate::cache::{CacheStats, RunCache};
use crate::content::ContentModel;
use crate::feedback::{FeedbackConfig, FeedbackSelector};
use crate::mapping::{BlockMap, MappingEntry};
use crate::monitor::WorkloadMonitor;
use crate::sd::{MergedRun, SdConfig, SequentialityDetector};
use crate::selector::{AlgorithmSelector, SelectorConfig};
use crate::slots::SlotStore;
use edc_compress::{CodecId, CostModel};
use edc_flash::IoKind;
use edc_sim::replay::{CompletedIo, SpaceReport, StorageScheme};
use edc_sim::{CpuPool, Storage};
use edc_trace::{OpType, Request};
use std::sync::Arc;

/// 4 KiB logical block size (the unit of EDC's mapping).
pub const BLOCK_BYTES: u64 = 4096;
/// Acknowledgement cost of inserting a write into the SD buffer (ns).
const BUFFER_ACK_NS: u64 = 20_000;
/// Service time of a DRAM run-cache hit (memcpy + lookup), ns.
const CACHE_HIT_NS: u64 = 10_000;
/// Compressed merged runs are framed in segments of this many blocks
/// (restart points), so a read fetches and decompresses only the segments
/// covering the requested blocks instead of the whole run. Real compressed
/// extent formats (e.g. btrfs, CASL-style logs) do the same at ~1 % ratio
/// cost; this keeps the paper's §III-E claim — reads unaffected — true for
/// merged data.
const READ_SEGMENT_BLOCKS: u64 = 4;
/// Cap on blocks touched per request (256 KiB requests).
const MAX_SPAN: u64 = 64;

/// Engine-level configuration shared by all policies.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Compression worker threads modelled.
    pub cpu_workers: usize,
    /// Deterministic (de)compression cost model.
    pub cost_model: CostModel,
    /// CPU cost of the sampling compressibility estimate, per 4 KiB block.
    pub estimate_ns_per_block: u64,
    /// Fraction of the device preconditioned before replay.
    pub precondition: f64,
    /// Decompressed-run DRAM cache capacity, in runs (0 = disabled, the
    /// paper-faithful default).
    pub read_cache_runs: usize,
    /// Issue device TRIMs for superseded slots so the FTL can reclaim
    /// them without migration (off by default; the paper's prototype does
    /// not describe TRIM integration).
    pub trim_released: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            cpu_workers: 2,
            cost_model: CostModel::paper_defaults(),
            estimate_ns_per_block: 2_000,
            precondition: 0.9,
            read_cache_runs: 0,
            trim_released: false,
        }
    }
}

/// EDC-specific configuration.
#[derive(Debug, Clone)]
pub struct EdcConfig {
    /// The calculated-IOPS threshold ladder.
    pub selector: SelectorConfig,
    /// Sequentiality-detector parameters.
    pub sd: SdConfig,
    /// Allocation policy (quantized per the paper; exact-fit for ablation).
    pub alloc: AllocPolicy,
    /// Estimated-fraction threshold above which blocks are written through
    /// (the paper's 75 % rule).
    pub write_through_threshold: f64,
    /// Disable the SD merge stage (ablation; every write flushes alone).
    pub use_sd: bool,
    /// Acknowledge SD-buffered writes at buffer insertion (write-back via
    /// the controller's DRAM/NVRAM buffer) rather than at flash-write
    /// completion. The flush pipeline still consumes CPU and device time
    /// asynchronously, so it delays *other* requests; only the merged
    /// writes' own acknowledgement moves off the critical path. This is
    /// the reading of the paper's prototype consistent with EDC *reducing*
    /// write response times despite the merge buffering of Fig. 7.
    pub ack_on_buffer: bool,
    /// NVRAM write-buffer capacity in bytes (used when `ack_on_buffer` is
    /// set). A write acknowledges early only while its data fits in the
    /// buffer alongside all still-unflushed runs; when dirty data exceeds
    /// the capacity, acknowledgement back-pressures to the flush pipeline's
    /// completion — write-back is not free, it is bounded by real DRAM.
    pub nvram_bytes: u64,
    /// Enable the Fig. 6 feedback controller: the ladder thresholds adapt
    /// to the compression engine's backlog instead of staying static.
    pub feedback: Option<FeedbackConfig>,
}

impl Default for EdcConfig {
    fn default() -> Self {
        EdcConfig {
            selector: SelectorConfig::paper_default(),
            sd: SdConfig::default(),
            alloc: AllocPolicy::Quantized,
            write_through_threshold: 0.75,
            use_sd: true,
            ack_on_buffer: true,
            nvram_bytes: 8 << 20, // 8 MiB controller buffer
            feedback: None,
        }
    }
}

/// Compression policy of a [`SimScheme`].
#[derive(Debug, Clone)]
pub enum Policy {
    /// No compression.
    Native,
    /// Always-on inline compression with one codec.
    Fixed(CodecId),
    /// Elastic Data Compression.
    Elastic(EdcConfig),
}

/// Per-codec usage counters (blocks stored per tag), for the Fig. 12
/// Gzip-share measure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CodecUsage {
    /// Blocks stored per tag (index = `CodecId::tag()`).
    pub blocks: [u64; 5],
}

impl CodecUsage {
    /// Fraction of blocks stored with `id`.
    pub fn share(&self, id: CodecId) -> f64 {
        let total: u64 = self.blocks.iter().sum();
        if total == 0 {
            return 0.0;
        }
        self.blocks[id.tag() as usize] as f64 / total as f64
    }
}

/// The unified scheme engine.
pub struct SimScheme {
    name: String,
    policy: Policy,
    storage: Storage,
    cpu: CpuPool,
    cost: CostModel,
    content: Arc<ContentModel>,
    map: BlockMap,
    slots: SlotStore,
    cache: RunCache,
    allocator: QuantizedAllocator,
    monitor: WorkloadMonitor,
    selector: AlgorithmSelector,
    feedback: Option<FeedbackSelector>,
    sd: SequentialityDetector,
    estimate_ns_per_block: u64,
    trim_released: bool,
    /// Flush completion times of recent runs, for NVRAM occupancy: an
    /// entry `(flash_done_ns, bytes)` holds buffer space until the flash
    /// write finishes.
    nvram_inflight: std::collections::VecDeque<(u64, u64)>,
    nvram_used: u64,
    logical_written: u64,
    physical_written: u64,
    usage: CodecUsage,
    last_arrival_ns: u64,
    /// CPU time spent decompressing on the read path (charged directly to
    /// the read's latency, not queued on the worker pool — see `read`).
    decompress_busy_ns: u64,
}

impl SimScheme {
    /// Build a scheme over `storage`.
    pub fn new(
        policy: Policy,
        storage: Storage,
        sim: SimConfig,
        content: Arc<ContentModel>,
    ) -> Self {
        let mut storage = storage;
        storage.precondition(sim.precondition);
        let name = match &policy {
            Policy::Native => "Native".to_string(),
            Policy::Fixed(id) => id.name().to_string(),
            Policy::Elastic(_) => "EDC".to_string(),
        };
        let (selector, sd, allocator) = match &policy {
            Policy::Elastic(cfg) => (
                AlgorithmSelector::new(cfg.selector.clone()),
                SequentialityDetector::new(cfg.sd),
                QuantizedAllocator::new(cfg.alloc),
            ),
            _ => (
                AlgorithmSelector::default(),
                SequentialityDetector::new(SdConfig::default()),
                // Fixed schemes pack compressed output exactly (products
                // store variable-size compressed segments in a log).
                QuantizedAllocator::new(AllocPolicy::ExactFit),
            ),
        };
        let feedback = match &policy {
            Policy::Elastic(cfg) => cfg
                .feedback
                .map(|f| FeedbackSelector::new(cfg.selector.clone(), f)),
            _ => None,
        };
        let slots = SlotStore::new(storage.logical_bytes());
        SimScheme {
            name,
            policy,
            storage,
            cpu: CpuPool::new(sim.cpu_workers),
            cost: sim.cost_model,
            content,
            map: BlockMap::new(),
            slots,
            cache: RunCache::new(sim.read_cache_runs),
            allocator,
            monitor: WorkloadMonitor::default(),
            selector,
            feedback,
            sd,
            estimate_ns_per_block: sim.estimate_ns_per_block,
            trim_released: sim.trim_released,
            nvram_inflight: std::collections::VecDeque::new(),
            nvram_used: 0,
            logical_written: 0,
            physical_written: 0,
            usage: CodecUsage::default(),
            last_arrival_ns: 0,
            decompress_busy_ns: 0,
        }
    }

    /// Convenience: a Native scheme.
    pub fn native(storage: Storage, sim: SimConfig, content: Arc<ContentModel>) -> Self {
        Self::new(Policy::Native, storage, sim, content)
    }

    /// Convenience: a fixed-compression scheme.
    pub fn fixed(
        codec: CodecId,
        storage: Storage,
        sim: SimConfig,
        content: Arc<ContentModel>,
    ) -> Self {
        Self::new(Policy::Fixed(codec), storage, sim, content)
    }

    /// Convenience: the EDC scheme with a given configuration.
    pub fn edc(
        cfg: EdcConfig,
        storage: Storage,
        sim: SimConfig,
        content: Arc<ContentModel>,
    ) -> Self {
        Self::new(Policy::Elastic(cfg), storage, sim, content)
    }

    /// Per-codec block usage (Fig. 12's Gzip share).
    pub fn codec_usage(&self) -> CodecUsage {
        self.usage
    }

    /// Allocator statistics (fragmentation, write-through count).
    pub fn alloc_stats(&self) -> AllocStats {
        self.allocator.stats()
    }

    /// SD merge rate.
    pub fn merge_rate(&self) -> f64 {
        self.sd.merge_rate()
    }

    /// Feedback controller state, when enabled: `(scale, adjustments)`.
    pub fn feedback_state(&self) -> Option<(f64, u64)> {
        self.feedback.as_ref().map(|f| (f.scale(), f.adjustments()))
    }

    /// Read-cache statistics (all zeroes when disabled).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Logical block number for a (wrapped) byte offset.
    fn block_of(&self, offset: u64) -> u64 {
        (offset % self.storage.logical_bytes()) / BLOCK_BYTES
    }

    /// Span of a request in blocks, capped.
    fn span_of(&self, req: &Request) -> u64 {
        req.block_span().clamp(1, MAX_SPAN)
    }

    // --- write paths -----------------------------------------------------

    fn write_native(&mut self, req: &Request, out: &mut Vec<CompletedIo>) {
        self.logical_written += u64::from(req.len);
        self.physical_written += u64::from(req.len);
        let c = self.storage.submit(req.arrival_ns, IoKind::Write, req.offset, req.len);
        self.usage.blocks[CodecId::None.tag() as usize] += self.span_of(req);
        out.push(CompletedIo { op: OpType::Write, arrival_ns: req.arrival_ns, completion_ns: c.finish_ns });
    }

    fn write_fixed(&mut self, codec: CodecId, req: &Request, out: &mut Vec<CompletedIo>) {
        self.logical_written += u64::from(req.len);
        let start = self.block_of(req.offset);
        let blocks = self.span_of(req) as u32;
        let bytes = u64::from(blocks) * BLOCK_BYTES;
        // Inline compression at arrival — always, even for incompressible
        // data (the pitfall the paper's §II-B calls out).
        let comp_ns = self.cost.compress_ns(codec, bytes as usize);
        let (_, cpu_done) = self.cpu.schedule(req.arrival_ns, comp_ns);
        let fraction = self.content.fraction(start, blocks, codec, bytes);
        let comp_bytes = ((bytes as f64) * fraction).ceil() as u64;
        let dev_done = self.store_run(start, blocks, codec, bytes, comp_bytes, cpu_done);
        out.push(CompletedIo {
            op: OpType::Write,
            arrival_ns: req.arrival_ns,
            completion_ns: dev_done.max(req.arrival_ns),
        });
    }

    fn write_elastic(&mut self, req: &Request, out: &mut Vec<CompletedIo>) {
        self.logical_written += u64::from(req.len);
        let cfg = match &self.policy {
            Policy::Elastic(cfg) => cfg.clone(),
            _ => unreachable!("write_elastic requires the elastic policy"),
        };
        let start = self.block_of(req.offset);
        let blocks = self.span_of(req) as u32;
        if cfg.use_sd {
            if let Some(run) = self.sd.on_write(start, blocks, req.arrival_ns) {
                self.flush_run(&cfg, run, req.arrival_ns, out);
            }
        } else {
            let run = MergedRun { start_block: start, blocks, arrivals_ns: vec![req.arrival_ns] };
            self.flush_run(&cfg, run, req.arrival_ns, out);
        }
    }

    /// Compress (or not) and store a flushed run; the EDC decision point.
    fn flush_run(
        &mut self,
        cfg: &EdcConfig,
        run: MergedRun,
        flush_ns: u64,
        out: &mut Vec<CompletedIo>,
    ) {
        let bytes = run.bytes();
        // 1. Sampling compressibility check (cheap CPU, charged).
        let est_ns = self.estimate_ns_per_block * u64::from(run.blocks);
        let (_, est_done) = self.cpu.schedule(flush_ns, est_ns);
        let est = self.content.estimate_fraction(run.start_block, run.blocks);
        // 2. Codec selection: write through if the data looks
        //    incompressible, otherwise ask the intensity ladder (which may
        //    be feedback-scaled — the Fig. 6 loop).
        let codec = if est > cfg.write_through_threshold {
            CodecId::None
        } else {
            let intensity = self.monitor.calculated_iops(flush_ns);
            match self.feedback.as_mut() {
                Some(fb) => {
                    let backlog = self.cpu.earliest_free().saturating_sub(flush_ns);
                    fb.observe(flush_ns, backlog);
                    fb.select(intensity)
                }
                None => self.selector.select(intensity),
            }
        };
        // 3. Compression CPU, if any.
        let (comp_bytes, ready) = if codec == CodecId::None {
            (bytes, est_done)
        } else {
            let comp_ns = self.cost.compress_ns(codec, bytes as usize);
            let (_, done) = self.cpu.schedule(est_done, comp_ns);
            let fraction = self.content.fraction(run.start_block, run.blocks, codec, bytes);
            (((bytes as f64) * fraction).ceil() as u64, done)
        };
        let dev_done = self.store_run(run.start_block, run.blocks, codec, bytes, comp_bytes, ready);
        // Per-request completions for every merged arrival: write-back ack
        // at buffer insertion while the NVRAM buffer has room, back-
        // pressured to the flash-write completion when dirty data exceeds
        // the buffer; strictly inline (no SD, or ack_on_buffer disabled)
        // always waits for the flash write.
        let write_back = cfg.ack_on_buffer && cfg.use_sd;
        let buffered_ok = if write_back {
            // Retire inflight runs whose flash writes finished by the time
            // this run was flushed, then try to admit this run.
            while let Some(&(done, b)) = self.nvram_inflight.front() {
                if done <= flush_ns {
                    self.nvram_used -= b;
                    self.nvram_inflight.pop_front();
                } else {
                    break;
                }
            }
            if self.nvram_used + bytes <= cfg.nvram_bytes {
                self.nvram_used += bytes;
                self.nvram_inflight.push_back((dev_done, bytes));
                true
            } else {
                false
            }
        } else {
            false
        };
        for &arrival in &run.arrivals_ns {
            let completion_ns = if buffered_ok {
                arrival + BUFFER_ACK_NS
            } else {
                dev_done.max(arrival)
            };
            out.push(CompletedIo { op: OpType::Write, arrival_ns: arrival, completion_ns });
        }
    }

    /// Allocate, write to the device, update the mapping, account space;
    /// returns the flash-write completion time.
    fn store_run(
        &mut self,
        start: u64,
        blocks: u32,
        codec: CodecId,
        bytes: u64,
        comp_bytes: u64,
        ready_ns: u64,
    ) -> u64 {
        // Previous allocation of this exact run, if overwriting one.
        let prev = self.map.get(start).filter(|e| e.run_start == start && e.run_blocks == blocks);
        let placement = self.allocator.place(bytes, comp_bytes, prev.map(|e| e.stored_bytes));
        let (tag, payload) =
            if placement.compressed { (codec, comp_bytes) } else { (CodecId::None, bytes) };
        let device_offset = self.slots.alloc_run(placement.allocated_bytes, blocks);
        let entry = MappingEntry {
            tag,
            run_start: start,
            run_blocks: blocks,
            device_offset,
            stored_bytes: placement.allocated_bytes,
            compressed_bytes: payload,
            checksum: 0,    // content is modelled, not materialized
            parity: false,  // ...so there is no payload to protect
        };
        // Drop superseded block references; a fully-released slot returns
        // to the pool and (optionally) the FTL learns it is dead via TRIM.
        for old in self.map.insert_run(entry) {
            self.cache.invalidate(old.run_start);
            if let Some((freed_off, freed_bytes)) = self.slots.release_block_ref(old.device_offset)
            {
                if self.trim_released && freed_bytes > 0 {
                    self.storage.trim(ready_ns, freed_off, freed_bytes as u32);
                }
            }
        }
        self.cache.invalidate(start);
        // The paper's compression-ratio measure is data reduction
        // (original volume / compressed volume); the quantized slot the
        // device writes is accounted separately via `alloc_stats`.
        self.physical_written += payload;
        self.usage.blocks[tag.tag() as usize] += u64::from(blocks);
        let c = self.storage.submit(
            ready_ns,
            IoKind::Write,
            device_offset,
            placement.allocated_bytes.max(1) as u32,
        );
        c.finish_ns
    }

    // --- read path --------------------------------------------------------

    fn read(&mut self, req: &Request, out: &mut Vec<CompletedIo>) {
        let start = self.block_of(req.offset);
        let span = self.span_of(req);
        let mut dev_done = req.arrival_ns;
        let mut decompress_ns = 0u64;
        let mut unmapped_bytes = 0u64;
        let mut b = start;
        while b < start + span {
            match self.map.get(b) {
                None => {
                    unmapped_bytes += BLOCK_BYTES;
                    b += 1;
                }
                Some(e) => {
                    // Consecutive blocks still mapped to this same run (a
                    // later overwrite may have superseded part of the run's
                    // address range, so each block's own entry decides).
                    let mut same = 1u64;
                    while b + same < start + span {
                        match self.map.get(b + same) {
                            Some(e2) if e2.device_offset == e.device_offset => same += 1,
                            _ => break,
                        }
                    }
                    let needed_end = b + same;
                    if self.cache.lookup(e.run_start).is_some() {
                        // DRAM hit: served from the decompressed-run cache.
                        dev_done = dev_done.max(req.arrival_ns + CACHE_HIT_NS);
                        b = needed_end;
                        continue;
                    }
                    if e.tag == CodecId::None {
                        // Uncompressed runs are block-addressable: fetch
                        // only the requested blocks at their offset within
                        // the slot.
                        let c = self.storage.submit(
                            req.arrival_ns,
                            IoKind::Read,
                            e.device_offset + (b - e.run_start) * BLOCK_BYTES,
                            (same * BLOCK_BYTES) as u32,
                        );
                        dev_done = dev_done.max(c.finish_ns);
                    } else {
                        // Compressed runs are framed in READ_SEGMENT_BLOCKS
                        // segments: fetch and decompress only the segments
                        // covering the requested blocks.
                        let segs_total =
                            u64::from(e.run_blocks).div_ceil(READ_SEGMENT_BLOCKS).max(1);
                        let first_seg = (b - e.run_start) / READ_SEGMENT_BLOCKS;
                        let last_seg = (needed_end - 1 - e.run_start) / READ_SEGMENT_BLOCKS;
                        let nsegs = last_seg - first_seg + 1;
                        let frac = nsegs as f64 / segs_total as f64;
                        let read_bytes =
                            ((e.compressed_bytes as f64 * frac).ceil() as u64).max(1);
                        let seg_offset = e.device_offset
                            + (e.compressed_bytes as f64 * first_seg as f64 / segs_total as f64)
                                as u64;
                        let c = self.storage.submit(
                            req.arrival_ns,
                            IoKind::Read,
                            seg_offset,
                            read_bytes as u32,
                        );
                        dev_done = dev_done.max(c.finish_ns);
                        let out_blocks =
                            (nsegs * READ_SEGMENT_BLOCKS).min(u64::from(e.run_blocks));
                        decompress_ns += self
                            .cost
                            .decompress_ns(e.tag, (out_blocks * BLOCK_BYTES) as usize);
                    }
                    self.cache.insert(e.run_start, ());
                    b = needed_end;
                }
            }
        }
        if unmapped_bytes > 0 {
            let c = self.storage.submit(
                req.arrival_ns,
                IoKind::Read,
                req.offset,
                unmapped_bytes as u32,
            );
            dev_done = dev_done.max(c.finish_ns);
        }
        // Foreground decompression preempts background compression (reads
        // are latency-critical; every real storage QoS path prioritizes
        // them), so the read pays its own decompression time but never
        // queues behind a multi-millisecond background Gzip job. This is
        // what makes the paper's §III-E claim — "the overall read response
        // times are not affected" — achievable.
        let completion = dev_done + decompress_ns;
        self.decompress_busy_ns += decompress_ns;
        out.push(CompletedIo { op: OpType::Read, arrival_ns: req.arrival_ns, completion_ns: completion });
    }
}

impl StorageScheme for SimScheme {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn on_request(&mut self, req: &Request, out: &mut Vec<CompletedIo>) {
        self.last_arrival_ns = self.last_arrival_ns.max(req.arrival_ns);
        self.monitor.record(req);
        // Timeout flush of a stale SD buffer happens before the new request.
        if let Policy::Elastic(cfg) = &self.policy {
            let cfg = cfg.clone();
            if let Some((run, deadline)) = self.sd.take_expired(req.arrival_ns) {
                self.flush_run(&cfg, run, deadline, out);
            }
        }
        match (req.op, &self.policy) {
            (OpType::Read, Policy::Elastic(cfg)) => {
                let cfg = cfg.clone();
                // Service the read first, then flush the SD buffer the
                // read triggered (Fig. 7): the flush is background work
                // and must not serialize ahead of the latency-critical
                // read in the device queue.
                self.read(req, out);
                if let Some(run) = self.sd.on_read() {
                    self.flush_run(&cfg, run, req.arrival_ns, out);
                }
            }
            (OpType::Read, _) => self.read(req, out),
            (OpType::Write, Policy::Native) => self.write_native(req, out),
            (OpType::Write, Policy::Fixed(codec)) => {
                let codec = *codec;
                self.write_fixed(codec, req, out);
            }
            (OpType::Write, Policy::Elastic(_)) => self.write_elastic(req, out),
        }
    }

    fn finalize(&mut self, out: &mut Vec<CompletedIo>) {
        if let Policy::Elastic(cfg) = &self.policy {
            let cfg = cfg.clone();
            if let Some(run) = self.sd.drain() {
                let flush_at = run.oldest_arrival_ns() + cfg.sd.timeout_ns;
                self.flush_run(&cfg, run, flush_at, out);
            }
        }
    }

    fn storage(&self) -> &Storage {
        &self.storage
    }

    fn space(&self) -> SpaceReport {
        SpaceReport { logical_bytes: self.logical_written, physical_bytes: self.physical_written }
    }

    fn cpu_busy_ns(&self) -> u64 {
        self.cpu.busy_ns() + self.decompress_busy_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::content::CalibrationConfig;
    use edc_datagen::DataMix;
    use edc_flash::SsdConfig;
    use edc_sim::replay::replay;
    use edc_trace::Trace;

    fn content() -> Arc<ContentModel> {
        Arc::new(ContentModel::calibrate(
            DataMix::primary_storage(),
            11,
            CalibrationConfig { samples: 1, small_bytes: 4096, large_bytes: 8192 },
        ))
    }

    fn storage() -> Storage {
        Storage::single(SsdConfig {
            logical_bytes: 64 << 20,
            overprovision: 0.2,
            sectors_per_block: 128,
            gc_low_watermark: 4,
            ..SsdConfig::default()
        })
    }

    fn sim() -> SimConfig {
        SimConfig { precondition: 0.5, ..SimConfig::default() }
    }

    fn wr(at_us: u64, block: u64) -> Request {
        Request {
            arrival_ns: at_us * 1000,
            op: OpType::Write,
            offset: block * 4096,
            len: 4096,
        }
    }

    fn rd(at_us: u64, block: u64) -> Request {
        Request { arrival_ns: at_us * 1000, op: OpType::Read, offset: block * 4096, len: 4096 }
    }

    #[test]
    fn native_writes_full_size() {
        let c = content();
        let t = Trace::new("t", vec![wr(0, 0), wr(1000, 1), rd(2000, 0)]);
        let mut s = SimScheme::native(storage(), sim(), c);
        let r = replay(&t, &mut s);
        assert_eq!(r.space.compression_ratio(), 1.0);
        assert_eq!(r.overall.count, 3);
        assert_eq!(r.device.bytes_written, 2 * 4096);
    }

    #[test]
    fn fixed_compression_saves_space_and_costs_cpu() {
        let c = content();
        let reqs: Vec<Request> = (0..200).map(|i| wr(i * 500, i)).collect();
        let t = Trace::new("t", reqs);
        let mut native = SimScheme::native(storage(), sim(), c.clone());
        let mut gzip = SimScheme::fixed(CodecId::Deflate, storage(), sim(), c);
        let rn = replay(&t, &mut native);
        let rg = replay(&t, &mut gzip);
        assert!(rg.space.compression_ratio() > 1.2, "ratio {}", rg.space.compression_ratio());
        assert!(rg.device.bytes_written < rn.device.bytes_written);
    }

    #[test]
    fn bzip2_slower_than_lzf_under_load() {
        let c = content();
        // A tight burst: strong codec must queue badly.
        let reqs: Vec<Request> = (0..300).map(|i| wr(i * 100, i)).collect();
        let t = Trace::new("t", reqs);
        let mut lzf = SimScheme::fixed(CodecId::Lzf, storage(), sim(), c.clone());
        let mut bzip2 = SimScheme::fixed(CodecId::Bwt, storage(), sim(), c);
        let rl = replay(&t, &mut lzf);
        let rb = replay(&t, &mut bzip2);
        assert!(
            rb.overall.mean_ns > rl.overall.mean_ns,
            "bzip2 {} !> lzf {}",
            rb.overall.mean_ns,
            rl.overall.mean_ns
        );
    }

    #[test]
    fn edc_skips_compression_in_bursts() {
        let c = content();
        // Sustained very high intensity (20k IOPS for 1.2 s — long enough
        // for the 1 s monitor window to cross the 4 000 calc-IOPS skip
        // threshold early): EDC should leave most blocks uncompressed.
        let reqs: Vec<Request> = (0..24_000).map(|i| wr(i * 50, i)).collect();
        let t = Trace::new("t", reqs);
        let mut edc = SimScheme::edc(EdcConfig::default(), storage(), sim(), c);
        let _ = replay(&t, &mut edc);
        let usage = edc.codec_usage();
        assert!(
            usage.share(CodecId::None) > 0.8,
            "burst must mostly skip compression, shares {:?}",
            usage.blocks
        );
    }

    #[test]
    fn edc_compresses_when_idle() {
        let c = content();
        // 50 writes spaced 100 ms apart: calculated IOPS ≈ 10 → Gzip band.
        let reqs: Vec<Request> = (0..50).map(|i| wr(i * 100_000, i * 3)).collect();
        let t = Trace::new("t", reqs);
        let mut edc = SimScheme::edc(EdcConfig::default(), storage(), sim(), c);
        let r = replay(&t, &mut edc);
        let usage = edc.codec_usage();
        let gz = usage.share(CodecId::Deflate);
        assert!(gz > 0.3, "idle writes should use Gzip, shares {:?}", usage.blocks);
        assert!(r.space.compression_ratio() > 1.0);
    }

    #[test]
    fn edc_ratio_between_lzf_and_bzip2_on_mixed_load() {
        let c = content();
        // Alternating bursts and idle gaps.
        let mut reqs = Vec::new();
        let mut t_us = 0u64;
        let mut blk = 0u64;
        for phase in 0..10 {
            let (n, gap) = if phase % 2 == 0 { (150, 200) } else { (10, 100_000) };
            for _ in 0..n {
                reqs.push(wr(t_us, blk));
                t_us += gap;
                blk += 1;
            }
        }
        let t = Trace::new("t", reqs);
        let mut lzf = SimScheme::fixed(CodecId::Lzf, storage(), sim(), c.clone());
        let mut bzip2 = SimScheme::fixed(CodecId::Bwt, storage(), sim(), c.clone());
        let mut edc = SimScheme::edc(EdcConfig::default(), storage(), sim(), c);
        let rl = replay(&t, &mut lzf);
        let rb = replay(&t, &mut bzip2);
        let re = replay(&t, &mut edc);
        let (l, b, e) = (
            rl.space.compression_ratio(),
            rb.space.compression_ratio(),
            re.space.compression_ratio(),
        );
        assert!(b > l, "bzip2 ratio {b} !> lzf ratio {l}");
        assert!(e > 1.0, "EDC must save space, got {e}");
        assert!(e < b + 0.01, "EDC ratio {e} should not beat Bzip2 {b}");
    }

    #[test]
    fn sd_merges_sequential_writes() {
        let c = content();
        let reqs: Vec<Request> = (0..64).map(|i| wr(i * 10, i)).collect(); // contiguous
        let t = Trace::new("t", reqs);
        let mut edc = SimScheme::edc(EdcConfig::default(), storage(), sim(), c);
        let _ = replay(&t, &mut edc);
        assert!(edc.merge_rate() > 0.8, "merge rate {}", edc.merge_rate());
    }

    #[test]
    fn reads_after_writes_complete_and_decompress() {
        let c = content();
        let mut reqs: Vec<Request> = (0..20).map(|i| wr(i * 200_000, i)).collect();
        for i in 0..20 {
            reqs.push(rd(5_000_000 + i * 1000, i));
        }
        let t = Trace::new("t", reqs);
        let mut edc = SimScheme::edc(EdcConfig::default(), storage(), sim(), c);
        let r = replay(&t, &mut edc);
        assert_eq!(r.reads.count, 20);
        assert!(r.reads.mean_ns > 0);
        assert_eq!(r.writes.count, 20);
    }

    #[test]
    fn completions_never_precede_arrivals() {
        let c = content();
        let mut reqs = Vec::new();
        for i in 0..500u64 {
            if i % 5 == 0 {
                reqs.push(rd(i * 300, i % 64));
            } else {
                reqs.push(wr(i * 300, i % 64));
            }
        }
        let t = Trace::new("t", reqs);
        for mut s in [
            SimScheme::native(storage(), sim(), c.clone()),
            SimScheme::fixed(CodecId::Lzf, storage(), sim(), c.clone()),
            SimScheme::edc(EdcConfig::default(), storage(), sim(), c.clone()),
        ] {
            let r = replay(&t, &mut s); // replay() asserts causality internally
            assert_eq!(r.overall.count, 500, "{}", r.scheme);
        }
    }

    #[test]
    fn write_through_threshold_zero_disables_compression() {
        let c = content();
        let cfg = EdcConfig { write_through_threshold: 0.0, ..EdcConfig::default() };
        let reqs: Vec<Request> = (0..100).map(|i| wr(i * 100_000, i)).collect();
        let t = Trace::new("t", reqs);
        let mut edc = SimScheme::edc(cfg, storage(), sim(), c);
        let r = replay(&t, &mut edc);
        assert!((r.space.compression_ratio() - 1.0).abs() < 1e-9);
        assert_eq!(edc.codec_usage().share(CodecId::None), 1.0);
    }

    #[test]
    fn read_cache_accelerates_repeated_reads() {
        let c = content();
        // Write a handful of blocks, then hammer reads of the same blocks.
        let mut reqs: Vec<Request> = (0..8).map(|i| wr(i * 200_000, i)).collect();
        for r in 0..400u64 {
            reqs.push(rd(2_000_000 + r * 1000, r % 8));
        }
        let t = Trace::new("t", reqs);
        let run = |cache_runs: usize| {
            let mut scheme = SimScheme::edc(
                EdcConfig::default(),
                storage(),
                SimConfig { read_cache_runs: cache_runs, ..sim() },
                c.clone(),
            );
            let report = replay(&t, &mut scheme);
            (report.reads.mean_ns, scheme.cache_stats())
        };
        let (cold, cold_stats) = run(0);
        let (warm, warm_stats) = run(64);
        assert_eq!(cold_stats.hits, 0);
        assert!(warm_stats.hit_rate() > 0.9, "hit rate {}", warm_stats.hit_rate());
        assert!(warm < cold, "cached reads {warm} !< uncached {cold}");
    }

    #[test]
    fn feedback_controller_reacts_to_backlog() {
        let c = content();
        // A mis-tuned ladder (everything Gzip) on a write stream that
        // saturates the one-worker engine (8.3k writes/s, ~69 % of them
        // compressible at ~186 us of Gzip per 4 KiB ≈ 107 % CPU demand):
        // the static version queues without bound; the feedback version
        // shrinks its bands until the stream fits. Inline acknowledgement
        // so the CPU backlog is visible in latency.
        let mis_tuned = crate::selector::SelectorConfig::two_level(5e4, 1e7);
        let reqs: Vec<Request> = (0..20_000).map(|i| wr(i * 120, i * 7)).collect();
        let t = Trace::new("t", reqs);
        let run = |feedback: Option<FeedbackConfig>| {
            let cfg = EdcConfig {
                selector: mis_tuned.clone(),
                feedback,
                ack_on_buffer: false,
                ..EdcConfig::default()
            };
            let sim_cfg = SimConfig { cpu_workers: 1, ..sim() };
            let mut scheme = SimScheme::edc(cfg, storage(), sim_cfg, c.clone());
            let report = replay(&t, &mut scheme);
            (report, scheme.feedback_state())
        };
        let (static_report, none_state) = run(None);
        let (adaptive_report, state) = run(Some(FeedbackConfig::default()));
        assert!(none_state.is_none());
        let (scale, adjustments) = state.expect("feedback enabled");
        assert!(scale < 1.0, "controller must have shrunk, scale {scale}");
        assert!(adjustments > 0);
        // The adaptive ladder sheds the Gzip backlog: p99 must improve.
        assert!(
            adaptive_report.overall.p99_ns < static_report.overall.p99_ns,
            "adaptive p99 {} !< static p99 {}",
            adaptive_report.overall.p99_ns,
            static_report.overall.p99_ns
        );
    }

    #[test]
    fn nvram_backpressure_bounds_write_back() {
        let c = content();
        // A flood of writes whose flush pipeline cannot drain: with a tiny
        // NVRAM buffer most writes must back-pressure to flash completion;
        // with a huge buffer they all ack early.
        let reqs: Vec<Request> = (0..4000).map(|i| wr(i * 30, i * 7)).collect();
        let t = Trace::new("t", reqs);
        let run = |nvram: u64| {
            let cfg = EdcConfig { nvram_bytes: nvram, ..EdcConfig::default() };
            let sim_cfg = SimConfig { cpu_workers: 1, ..sim() };
            let mut scheme = SimScheme::edc(cfg, storage(), sim_cfg, c.clone());
            replay(&t, &mut scheme).writes.mean_ns
        };
        let tiny = run(64 * 1024);
        let huge = run(1 << 30);
        assert!(
            tiny > 3 * huge,
            "tiny NVRAM must back-pressure: {tiny} vs {huge}"
        );
    }

    #[test]
    fn trim_on_release_reduces_migration() {
        let c = content();
        // Heavy overwrites of a small working set on a small device.
        let mut reqs = Vec::new();
        for i in 0..30_000u64 {
            reqs.push(wr(i * 100, (i * 13) % 2000));
        }
        let t = Trace::new("t", reqs);
        let small = || {
            Storage::single(edc_flash::SsdConfig {
                logical_bytes: 16 << 20,
                overprovision: 0.2,
                sectors_per_block: 64,
                gc_low_watermark: 3,
                ..edc_flash::SsdConfig::default()
            })
        };
        let run = |trim: bool| {
            let sim_cfg = SimConfig { trim_released: trim, precondition: 1.0, ..sim() };
            let mut scheme = SimScheme::edc(EdcConfig::default(), small(), sim_cfg, c.clone());
            replay(&t, &mut scheme).ftl.migrated_sectors
        };
        let without = run(false);
        let with = run(true);
        assert!(
            with < without,
            "TRIM must reduce GC migration: {with} vs {without}"
        );
    }

    #[test]
    fn no_sd_ablation_flushes_immediately() {
        let c = content();
        let cfg = EdcConfig { use_sd: false, ..EdcConfig::default() };
        let reqs: Vec<Request> = (0..64).map(|i| wr(i * 10, i)).collect();
        let t = Trace::new("t", reqs);
        let mut edc = SimScheme::edc(cfg, storage(), sim(), c);
        let r = replay(&t, &mut edc);
        assert_eq!(r.writes.count, 64);
        assert_eq!(edc.merge_rate(), 0.0);
    }
}
