//! The Workload Monitor (paper §III-D, Fig. 4).
//!
//! EDC quantifies I/O intensity as **calculated IOPS**: the number of 4 KiB
//! page-units issued per second, where a request of `n` bytes counts as
//! `ceil(n / 4 KiB)` units ("one 8 KB request is traded as two 4 KB
//! requests"). The monitor keeps a sliding window of recent arrivals and
//! answers the current calculated-IOPS value, which the
//! [selector](crate::selector) turns into a codec choice.

use edc_trace::Request;
use std::collections::VecDeque;

/// Sliding-window calculated-IOPS monitor.
///
/// ```
/// use edc_core::WorkloadMonitor;
/// use edc_trace::{Request, OpType};
///
/// let mut monitor = WorkloadMonitor::default(); // 1 s window
/// // An 8 KiB request counts as two 4 KiB page-units (paper §III-D).
/// monitor.record(&Request { arrival_ns: 0, op: OpType::Write, offset: 0, len: 8192 });
/// assert_eq!(monitor.calculated_iops(0), 2.0);
/// assert_eq!(monitor.calculated_iops(2_000_000_000), 0.0); // window passed
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadMonitor {
    window_ns: u64,
    /// `(arrival_ns, page_units)` events inside the window.
    events: VecDeque<(u64, u32)>,
    /// Sum of page units currently in the window.
    pages_in_window: u64,
    /// Most recent time passed to `record`/`calculated_iops`.
    last_now_ns: u64,
}

impl WorkloadMonitor {
    /// Default window: 1 second, matching the paper's "I/Os accessed Per
    /// Second" definition.
    pub const DEFAULT_WINDOW_NS: u64 = 1_000_000_000;

    /// Create a monitor with the given sliding-window length.
    pub fn new(window_ns: u64) -> Self {
        assert!(window_ns > 0, "window must be positive");
        WorkloadMonitor {
            window_ns,
            events: VecDeque::new(),
            pages_in_window: 0,
            last_now_ns: 0,
        }
    }

    /// Record an arriving request.
    pub fn record(&mut self, req: &Request) {
        self.record_pages(req.arrival_ns, req.page_units());
    }

    /// Record `pages` page-units at `now_ns` (used by the engine to also
    /// feed back internally generated work, closing the paper's Fig. 6
    /// loop).
    pub fn record_pages(&mut self, now_ns: u64, pages: u32) {
        self.evict(now_ns);
        self.events.push_back((now_ns, pages));
        self.pages_in_window += u64::from(pages);
        self.last_now_ns = self.last_now_ns.max(now_ns);
    }

    /// Current calculated IOPS (page-units per second over the window).
    pub fn calculated_iops(&mut self, now_ns: u64) -> f64 {
        self.evict(now_ns);
        self.pages_in_window as f64 * 1e9 / self.window_ns as f64
    }

    fn evict(&mut self, now_ns: u64) {
        let cutoff = now_ns.saturating_sub(self.window_ns);
        while let Some(&(t, pages)) = self.events.front() {
            if t >= cutoff {
                break;
            }
            self.events.pop_front();
            self.pages_in_window -= u64::from(pages);
        }
        self.last_now_ns = self.last_now_ns.max(now_ns);
    }
}

impl Default for WorkloadMonitor {
    fn default() -> Self {
        Self::new(Self::DEFAULT_WINDOW_NS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edc_trace::OpType;

    fn req(at_ns: u64, len: u32) -> Request {
        Request { arrival_ns: at_ns, op: OpType::Write, offset: 0, len }
    }

    #[test]
    fn empty_monitor_reads_zero() {
        let mut m = WorkloadMonitor::default();
        assert_eq!(m.calculated_iops(0), 0.0);
        assert_eq!(m.calculated_iops(5_000_000_000), 0.0);
    }

    #[test]
    fn counts_page_units_not_requests() {
        let mut m = WorkloadMonitor::default();
        m.record(&req(0, 8192)); // 2 page-units
        m.record(&req(0, 4096)); // 1
        assert_eq!(m.calculated_iops(0), 3.0);
    }

    #[test]
    fn window_eviction() {
        let mut m = WorkloadMonitor::default();
        m.record(&req(0, 4096));
        m.record(&req(500_000_000, 4096));
        assert_eq!(m.calculated_iops(500_000_000), 2.0);
        // At t=1.2 s the first event (t=0) has left the 1 s window.
        assert_eq!(m.calculated_iops(1_200_000_000), 1.0);
        // At t=2 s everything is gone.
        assert_eq!(m.calculated_iops(2_000_000_000), 0.0);
    }

    #[test]
    fn burst_registers_high_intensity() {
        let mut m = WorkloadMonitor::default();
        for i in 0..500 {
            m.record(&req(i * 1_000_000, 4096)); // 500 reqs in 0.5 s
        }
        let iops = m.calculated_iops(500_000_000);
        assert!(iops >= 499.0, "got {iops}");
    }

    #[test]
    fn shorter_window_reacts_faster() {
        let mut long = WorkloadMonitor::new(1_000_000_000);
        let mut short = WorkloadMonitor::new(100_000_000);
        for i in 0..100 {
            let r = req(i * 1_000_000, 4096); // burst in first 100 ms
            long.record(&r);
            short.record(&r);
        }
        // 300 ms later the short window has forgotten the burst.
        assert_eq!(short.calculated_iops(400_000_000), 0.0);
        assert!(long.calculated_iops(400_000_000) > 0.0);
    }

    #[test]
    fn feedback_pages_count() {
        let mut m = WorkloadMonitor::default();
        m.record_pages(0, 16); // e.g. a 64 KiB merged flush
        assert_eq!(m.calculated_iops(0), 16.0);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = WorkloadMonitor::new(0);
    }
}
