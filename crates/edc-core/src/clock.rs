//! Time as an input: the [`Clock`] abstraction.
//!
//! Every time-sensitive pipeline entry point takes a `now_ns` argument —
//! the workload monitor's IOPS window, the sequentiality detector's
//! recency test, and the heat tracker's decay all key off it. For
//! deterministic record/replay the timestamp must be an *input* that the
//! recorder captures, not something the store samples on its own: a
//! [`Clock`] is the one place a timestamp is drawn, and the
//! [`Recorder`](crate::record::Recorder) writes each draw into the log so
//! the [`Replayer`](crate::record::Replayer) can feed the identical value
//! back.
//!
//! Two implementations cover the two regimes:
//!
//! * [`ManualClock`] — a seeded, fixed-step simulated clock. Benches and
//!   tests already simulate time this way (`clock += STEP` by hand); the
//!   struct just names the idiom.
//! * [`WallClock`] — real `std::time::Instant`-derived nanoseconds for
//!   live runs. Only safe to *record* with, never required to replay,
//!   because replay reads timestamps from the log.

/// A source of monotonic nanosecond timestamps.
///
/// `now_ns` takes `&mut self` so simulated clocks can advance per draw;
/// callers draw exactly once per logical operation.
pub trait Clock {
    /// The current time in nanoseconds. Successive calls must be
    /// non-decreasing.
    fn now_ns(&mut self) -> u64;
}

/// A deterministic simulated clock: starts at `start_ns` and advances by
/// a fixed `step_ns` on every draw (the first draw returns
/// `start_ns + step_ns`).
///
/// This mirrors the `clock += STEP; clock` pattern the benches use, so a
/// recorded bench schedule and a hand-rolled one see identical
/// timestamps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ManualClock {
    now_ns: u64,
    step_ns: u64,
}

impl ManualClock {
    /// A clock at `start_ns` that advances `step_ns` per draw.
    pub fn new(start_ns: u64, step_ns: u64) -> Self {
        ManualClock { now_ns: start_ns, step_ns }
    }

    /// The last value returned (or the start value if never drawn).
    pub fn peek_ns(&self) -> u64 {
        self.now_ns
    }

    /// Jump the clock forward by `delta_ns` without drawing — models an
    /// idle gap (e.g. the heat bench's cool-down window).
    pub fn advance(&mut self, delta_ns: u64) {
        self.now_ns += delta_ns;
    }
}

impl Clock for ManualClock {
    fn now_ns(&mut self) -> u64 {
        self.now_ns += self.step_ns;
        self.now_ns
    }
}

/// Wall-clock time: nanoseconds since the clock was created, measured
/// with a monotonic [`std::time::Instant`].
#[derive(Debug, Clone, Copy)]
pub struct WallClock {
    epoch: std::time::Instant,
}

impl WallClock {
    /// A wall clock whose zero is "now".
    pub fn new() -> Self {
        WallClock { epoch: std::time::Instant::now() }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now_ns(&mut self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_steps_deterministically() {
        let mut c = ManualClock::new(100, 7);
        assert_eq!(c.peek_ns(), 100);
        assert_eq!(c.now_ns(), 107);
        assert_eq!(c.now_ns(), 114);
        c.advance(1000);
        assert_eq!(c.now_ns(), 1121);
        assert_eq!(c.peek_ns(), 1121);
    }

    #[test]
    fn wall_clock_is_monotone() {
        let mut c = WallClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }
}
