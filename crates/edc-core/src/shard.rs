//! Sharded concurrent pipeline front-end (DESIGN.md §11).
//!
//! [`crate::pipeline::EdcPipeline`] is a single-owner `&mut self` object:
//! every read and write from every client serializes on one owner, no
//! matter how many cores the host has. [`ShardedPipeline`] scales the
//! front-end the way a production storage target does — by *partitioning*
//! the logical address space across N independent pipelines, each behind
//! its own lock with its own journal stream, run cache, allocator and
//! device region. Requests touching different shards proceed fully in
//! parallel with zero shared mutable state on the hot path; requests to
//! the same shard serialize on that shard's lock only.
//!
//! ## Routing
//!
//! Logical blocks are grouped into fixed-size *extents* of
//! [`ShardConfig::extent_blocks`] blocks; extent `e` belongs to shard
//! `e % shards`. Extents (256 KiB at the default 64 blocks) are large
//! enough that the sequentiality detector still merges contiguous writes
//! into multi-block runs within a shard, while striping extents
//! round-robin spreads hot ranges across all shards. Writes and reads
//! spanning an extent boundary are split and routed piecewise.
//!
//! ## Per-shard journals
//!
//! Every shard owns a [`crate::journal::MappingJournal`] whose records
//! carry the shard id in tag-byte bits 3–6. The record layout is
//! unchanged, and a pre-sharding journal (all shard bits zero) replays
//! exactly as shard 0's stream — [`ShardedPipeline::from_pipeline`]
//! adopts such a legacy store as a one-shard front-end and
//! [`ShardedPipeline::recover`] replays it unchanged. A record that
//! decodes cleanly but names a different shard aborts that shard's
//! recovery instead of silently serving another shard's data.
//!
//! ## Consistency model
//!
//! Each individual read or write piece is atomic under its shard's lock;
//! a multi-extent operation is *not* atomic as a whole (pieces land
//! per-shard, like a request split across RAID stripes). Maintenance
//! operations (`flush_all`, `recover`, `scrub`, `verify`) fan out across
//! shards on worker threads ([`crate::parallel::par_map_indexed`]) and
//! aggregate the per-shard reports; [`ShardedPipeline::stats`] instead
//! acquires *all* shard locks before reading any counter, so its totals
//! are one instant's truth.

use crate::dedup::DedupReport;
use crate::error::EdcError;
use crate::journal::{RecoveryError, MAX_SHARDS};
use crate::parallel::par_map_indexed;
use crate::pipeline::{
    BatchWrite, EdcPipeline, PipelineConfig, PipelineStats, ReadError, RecompressReport,
    RecoveryReport, ScrubReport, WriteResult,
};
use crate::scheme::BLOCK_BYTES;
use edc_compress::CodecId;
use std::sync::Mutex;

/// Configuration of a [`ShardedPipeline`].
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Number of shards (1 ..= [`MAX_SHARDS`]). One shard degenerates to
    /// a locked serial pipeline — the control case in benchmarks.
    pub shards: usize,
    /// Extent size in 4 KiB blocks (≥ 1). Contiguous writes merge into
    /// runs only within one extent, so larger extents favour merging and
    /// smaller ones favour spread.
    pub extent_blocks: u64,
    /// Template for every shard's pipeline. `journal_shard` is overwritten
    /// per shard; everything else (ladder, SD, cache size, dwell, parity,
    /// fault plan) applies to each shard independently.
    pub pipeline: PipelineConfig,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig { shards: 4, extent_blocks: 64, pipeline: PipelineConfig::default() }
    }
}

/// One logical-address piece of a split request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Piece {
    shard: usize,
    offset: u64,
    len: u64,
}

/// A concurrent, shard-per-lock front-end over N [`EdcPipeline`]s.
///
/// All entry points take `&self`: clients on different threads call
/// `write`/`read` directly, and the routing layer serializes only the
/// shards each request actually touches.
pub struct ShardedPipeline {
    shards: Vec<Mutex<EdcPipeline>>,
    extent_blocks: u64,
}

impl ShardedPipeline {
    /// Create a sharded store over `capacity_bytes` of device space,
    /// split evenly across shards. Each shard's journal is stamped with
    /// its shard id.
    pub fn new(capacity_bytes: u64, config: ShardConfig) -> Self {
        assert!(
            config.shards >= 1 && config.shards <= MAX_SHARDS,
            "shard count must be 1..={MAX_SHARDS}"
        );
        assert!(config.extent_blocks >= 1, "extent must hold at least one block");
        let per_shard = capacity_bytes / config.shards as u64;
        assert!(per_shard >= BLOCK_BYTES, "capacity below one block per shard");
        let shards = (0..config.shards)
            .map(|i| {
                let mut pc = config.pipeline.clone();
                pc.journal_shard = i as u8;
                // Align heat-tracking extents with the routing extents:
                // a heat extent then never straddles two shards, so each
                // shard's tracker is fully local ("sharded-safe layout").
                pc.heat.extent_blocks = config.extent_blocks;
                Mutex::new(EdcPipeline::new(per_shard, pc))
            })
            .collect();
        ShardedPipeline { shards, extent_blocks: config.extent_blocks }
    }

    /// Adopt an existing single-owner pipeline — typically a legacy store
    /// whose journal predates sharding (shard bits all zero) — as a
    /// one-shard front-end. [`ShardedPipeline::recover`] then replays the
    /// old journal unchanged.
    pub fn from_pipeline(pipeline: EdcPipeline) -> Self {
        assert_eq!(
            pipeline.config().journal_shard,
            0,
            "an adopted pipeline must carry the legacy shard id 0"
        );
        ShardedPipeline { shards: vec![Mutex::new(pipeline)], extent_blocks: 64 }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Extent size in 4 KiB blocks.
    pub fn extent_blocks(&self) -> u64 {
        self.extent_blocks
    }

    /// Shard owning logical `block`.
    fn shard_of_block(&self, block: u64) -> usize {
        ((block / self.extent_blocks) % self.shards.len() as u64) as usize
    }

    /// Shard owning the whole byte range `[offset, offset + len)`, or
    /// `None` if the range straddles an extent boundary and therefore
    /// fans out to more than one piece. The ring front-end routes on
    /// this: an op it accepts touches exactly one shard, so one drainer
    /// owns it end to end. A zero-length range belongs to the shard of
    /// its offset.
    pub fn single_shard_of(&self, offset: u64, len: u64) -> Option<usize> {
        if self.shards.len() == 1 {
            return Some(0);
        }
        let extent_bytes = self.extent_blocks * BLOCK_BYTES;
        let last = offset + len.saturating_sub(1);
        if offset / extent_bytes == last / extent_bytes {
            Some(self.shard_of_block(offset / BLOCK_BYTES))
        } else {
            None
        }
    }

    /// Split `[offset, offset + len)` at extent boundaries into
    /// shard-routed pieces, in address order.
    fn pieces(&self, offset: u64, len: u64) -> Vec<Piece> {
        if self.shards.len() == 1 {
            return vec![Piece { shard: 0, offset, len }];
        }
        let extent_bytes = self.extent_blocks * BLOCK_BYTES;
        let end = offset + len;
        let mut out = Vec::new();
        let mut at = offset;
        while at < end {
            let extent = at / extent_bytes;
            let extent_end = (extent + 1).saturating_mul(extent_bytes);
            let stop = end.min(extent_end);
            out.push(Piece {
                shard: self.shard_of_block(at / BLOCK_BYTES),
                offset: at,
                len: stop - at,
            });
            at = stop;
        }
        out
    }

    /// Lock shard `i` and run `f` against its pipeline. The maintenance /
    /// test hook for anything the aggregate surface doesn't expose:
    /// arming per-shard fault plans, tearing one shard's journal,
    /// inspecting one shard's device image.
    pub fn with_shard<T>(&self, i: usize, f: impl FnOnce(&mut EdcPipeline) -> T) -> T {
        f(&mut self.shards[i].lock().expect("shard poisoned"))
    }

    /// Write `data` (whole 4 KiB blocks) at byte `offset`, concurrently
    /// with other callers. Pieces crossing extent boundaries are routed to
    /// their shards in address order; returns every run the write flushed,
    /// across all touched shards.
    pub fn write(
        &self,
        now_ns: u64,
        offset: u64,
        data: &[u8],
    ) -> Result<Vec<WriteResult>, EdcError> {
        self.write_batch(&[BatchWrite { now_ns, offset, data }])
    }

    /// Accept a batch of writes. The whole batch is validated up front
    /// (alignment, whole blocks) before any byte is accepted, matching
    /// [`EdcPipeline::write_batch`]; pieces are then grouped per shard and
    /// applied with one lock acquisition per touched shard. Each shard's
    /// sub-batch is atomic under its lock; the batch as a whole is not
    /// (per-shard atomicity, like a stripe-split RAID request).
    pub fn write_batch(&self, writes: &[BatchWrite<'_>]) -> Result<Vec<WriteResult>, EdcError> {
        for w in writes {
            if !w.offset.is_multiple_of(BLOCK_BYTES)
                || w.data.is_empty()
                || !(w.data.len() as u64).is_multiple_of(BLOCK_BYTES)
            {
                return Err(crate::error::WriteError::Unaligned.into());
            }
        }
        // Group pieces per shard, preserving batch order within a shard.
        let mut per_shard: Vec<Vec<BatchWrite<'_>>> = vec![Vec::new(); self.shards.len()];
        for w in writes {
            for p in self.pieces(w.offset, w.data.len() as u64) {
                let skip = (p.offset - w.offset) as usize;
                per_shard[p.shard].push(BatchWrite {
                    now_ns: w.now_ns,
                    offset: p.offset,
                    data: &w.data[skip..skip + p.len as usize],
                });
            }
        }
        let mut results = Vec::new();
        for (i, batch) in per_shard.iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let mut shard = self.shards[i].lock().expect("shard poisoned");
            results.extend(shard.write_batch(batch)?);
        }
        Ok(results)
    }

    /// Read `len` bytes at `offset` (both 4 KiB-aligned), concurrently
    /// with other callers. Each piece is served under its shard's lock;
    /// unwritten blocks read as zeroes.
    pub fn read(&self, now_ns: u64, offset: u64, len: u64) -> Result<Vec<u8>, ReadError> {
        if !offset.is_multiple_of(BLOCK_BYTES) || !len.is_multiple_of(BLOCK_BYTES) {
            return Err(ReadError::Unaligned);
        }
        let mut out = vec![0u8; len as usize];
        for p in self.pieces(offset, len) {
            let piece = {
                let mut shard = self.shards[p.shard].lock().expect("shard poisoned");
                shard.read(now_ns, p.offset, p.len)?
            };
            let dst = (p.offset - offset) as usize;
            out[dst..dst + piece.len()].copy_from_slice(&piece);
        }
        Ok(out)
    }

    /// Flush every shard's buffered and sealed runs, fanning the shards
    /// across worker threads. Results are concatenated in shard order.
    pub fn flush_all(&self, now_ns: u64) -> Result<Vec<WriteResult>, EdcError> {
        let per_shard = self.for_each_shard(|p| p.flush_all(now_ns));
        let mut results = Vec::new();
        for r in per_shard {
            results.extend(r?);
        }
        Ok(results)
    }

    /// Recover every shard from its journal and compose one report:
    /// counters sum, `torn_tail` is true if any shard's journal ended
    /// torn. A record routed to the wrong shard aborts with that shard's
    /// [`RecoveryError`]. Legacy single-shard journals (shard bits zero)
    /// replay unchanged through a one-shard front-end
    /// ([`ShardedPipeline::from_pipeline`]).
    pub fn recover(&self) -> Result<RecoveryReport, RecoveryError> {
        let per_shard = self.for_each_shard(|p| p.recover());
        let mut report = RecoveryReport::default();
        for r in per_shard {
            let r = r?;
            report.scanned_records += r.scanned_records;
            report.replayed_runs += r.replayed_runs;
            report.payload_mismatches += r.payload_mismatches;
            report.torn_tail |= r.torn_tail;
        }
        Ok(report)
    }

    /// Scrub every shard (verify + heal, see [`EdcPipeline::scrub`]) and
    /// merge the per-shard reports.
    pub fn scrub(&self) -> Result<ScrubReport, EdcError> {
        self.merge_scrub(self.for_each_shard(|p| p.scrub()))
    }

    /// Read-only integrity audit of every shard (see
    /// [`EdcPipeline::verify`]); nothing is healed or rewritten.
    pub fn verify(&self) -> Result<ScrubReport, EdcError> {
        self.merge_scrub(self.for_each_shard(|p| p.verify()))
    }

    /// Cross-check every shard's dedup refcount ledger against its
    /// mapping table (see [`EdcPipeline::verify_dedup`]) and merge the
    /// per-shard reports. The ledger is per shard — routing never shares
    /// a run across shards — so the fan-out needs no cross-shard state.
    pub fn verify_dedup(&self) -> Result<DedupReport, EdcError> {
        let per_shard = self.for_each_shard(|p| p.verify_dedup());
        let mut report = DedupReport::default();
        for r in per_shard {
            report.merge(&r?);
        }
        Ok(report)
    }

    /// Heat-aware background recompression across every shard (see
    /// [`EdcPipeline::recompress_pass`]), fanned across worker threads
    /// like the other maintenance passes. Each shard consults its own
    /// heat tracker — heat extents are aligned with routing extents at
    /// construction, so no cross-shard state exists to synchronise.
    /// `max_rewrites_per_shard` is each shard's idle-bandwidth budget;
    /// the merged report sums all shards.
    pub fn recompress(
        &self,
        now_ns: u64,
        target: CodecId,
        max_rewrites_per_shard: usize,
    ) -> Result<RecompressReport, EdcError> {
        let per_shard =
            self.for_each_shard(|p| p.recompress_pass(now_ns, target, max_rewrites_per_shard));
        let mut report = RecompressReport::default();
        for r in per_shard {
            report.merge(&r?);
        }
        Ok(report)
    }

    /// Aggregate statistics. All shard locks are acquired (in index
    /// order) *before* any counter is read, so the totals — including the
    /// merged [`crate::cache::CacheStats`] — reflect a single instant;
    /// reusing [`crate::mapping::BlockMap::snapshot`] per shard keeps each
    /// shard's mapping figures internally consistent too.
    pub fn stats(&self) -> PipelineStats {
        let guards: Vec<_> =
            self.shards.iter().map(|m| m.lock().expect("shard poisoned")).collect();
        let mut total = PipelineStats::default();
        for g in &guards {
            total.merge(&g.stats());
        }
        total
    }

    /// Current live on-flash footprint summed over every shard (see
    /// [`EdcPipeline::live_stored_bytes`]). Shard locks are taken in index
    /// order so the sum reflects one instant.
    pub fn live_stored_bytes(&self) -> u64 {
        self.shards.iter().map(|m| m.lock().expect("shard poisoned").live_stored_bytes()).sum()
    }

    /// Register a file-type hint over `[offset, offset + len)` (both
    /// 4 KiB-aligned), routed piecewise to the owning shards — the same
    /// surface as [`EdcPipeline::set_hint`], so callers no longer reach
    /// through [`ShardedPipeline::with_shard`].
    pub fn set_hint(&self, offset: u64, len: u64, hint: crate::hints::FileTypeHint) {
        assert!(
            offset.is_multiple_of(BLOCK_BYTES) && len.is_multiple_of(BLOCK_BYTES),
            "hint range must be aligned"
        );
        for p in self.pieces(offset, len) {
            self.shards[p.shard].lock().expect("shard poisoned").set_hint(p.offset, p.len, hint);
        }
    }

    /// Arm `plan` on every shard, restarting each decision stream. Shard
    /// 0 keeps the plan's seed verbatim (a one-shard front-end then draws
    /// the exact stream a plain [`EdcPipeline`] would); shard `i > 0`
    /// gets a seed mixed with its index so shards fault independently
    /// rather than in lockstep.
    pub fn set_fault_plan(&self, plan: edc_flash::FaultPlan) {
        for (i, m) in self.shards.iter().enumerate() {
            m.lock().expect("shard poisoned").set_fault_plan(plan.for_lane(i));
        }
    }

    /// Injected-fault counters summed over every shard. Locks are taken
    /// in index order so the totals reflect one instant.
    pub fn fault_stats(&self) -> edc_flash::FaultStats {
        let guards: Vec<_> =
            self.shards.iter().map(|m| m.lock().expect("shard poisoned")).collect();
        let mut total = edc_flash::FaultStats::default();
        for g in &guards {
            total.merge(&g.fault_stats());
        }
        total
    }

    /// Tear shard `shard`'s journal to its first `bytes` bytes (the
    /// mid-journal-program crash hook, see
    /// [`EdcPipeline::truncate_journal_bytes`]).
    pub fn truncate_journal_bytes(&self, shard: usize, bytes: usize) {
        self.shards[shard].lock().expect("shard poisoned").truncate_journal_bytes(bytes);
    }

    /// Cut power on every shard immediately (see
    /// [`EdcPipeline::cut_power`]); [`ShardedPipeline::recover`] brings
    /// the store back.
    pub fn cut_power(&self) {
        for m in &self.shards {
            m.lock().expect("shard poisoned").cut_power();
        }
    }

    /// Whether every shard currently has power.
    pub fn powered(&self) -> bool {
        self.shards.iter().all(|m| m.lock().expect("shard poisoned").powered())
    }

    /// Run `f` against every shard concurrently, results in shard order.
    fn for_each_shard<T: Send>(&self, f: impl Fn(&mut EdcPipeline) -> T + Sync) -> Vec<T> {
        let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
        par_map_indexed(self.shards.len(), workers, |i| {
            f(&mut self.shards[i].lock().expect("shard poisoned"))
        })
    }

    fn merge_scrub(
        &self,
        per_shard: Vec<Result<ScrubReport, EdcError>>,
    ) -> Result<ScrubReport, EdcError> {
        let mut report = ScrubReport::default();
        for r in per_shard {
            report.merge(&r?);
        }
        Ok(report)
    }
}

impl crate::store::Store for ShardedPipeline {
    fn write_batch(&mut self, writes: &[BatchWrite<'_>]) -> Result<Vec<WriteResult>, EdcError> {
        ShardedPipeline::write_batch(self, writes)
    }

    fn read(&mut self, now_ns: u64, offset: u64, len: u64) -> Result<Vec<u8>, ReadError> {
        ShardedPipeline::read(self, now_ns, offset, len)
    }

    fn flush_all(&mut self, now_ns: u64) -> Result<Vec<WriteResult>, EdcError> {
        ShardedPipeline::flush_all(self, now_ns)
    }

    fn recover(&mut self) -> Result<RecoveryReport, RecoveryError> {
        ShardedPipeline::recover(self)
    }

    fn scrub(&mut self) -> Result<ScrubReport, EdcError> {
        ShardedPipeline::scrub(self)
    }

    fn verify_store(&mut self) -> Result<ScrubReport, EdcError> {
        ShardedPipeline::verify(self)
    }

    fn verify_dedup(&mut self) -> Result<DedupReport, EdcError> {
        ShardedPipeline::verify_dedup(self)
    }

    fn recompress(
        &mut self,
        now_ns: u64,
        target: CodecId,
        max_rewrites: usize,
    ) -> Result<RecompressReport, EdcError> {
        ShardedPipeline::recompress(self, now_ns, target, max_rewrites)
    }

    fn set_hint(&mut self, offset: u64, len: u64, hint: crate::hints::FileTypeHint) {
        ShardedPipeline::set_hint(self, offset, len, hint)
    }

    fn set_fault_plan(&mut self, plan: edc_flash::FaultPlan) {
        ShardedPipeline::set_fault_plan(self, plan)
    }

    fn fault_stats(&mut self) -> edc_flash::FaultStats {
        ShardedPipeline::fault_stats(self)
    }

    fn truncate_journal_bytes(&mut self, shard: usize, bytes: usize) {
        ShardedPipeline::truncate_journal_bytes(self, shard, bytes)
    }

    fn cut_power(&mut self) {
        ShardedPipeline::cut_power(self)
    }

    fn powered(&mut self) -> bool {
        ShardedPipeline::powered(self)
    }

    fn stats(&mut self) -> PipelineStats {
        ShardedPipeline::stats(self)
    }

    fn shard_count(&self) -> usize {
        ShardedPipeline::shard_count(self)
    }

    fn live_stored_bytes(&mut self) -> u64 {
        ShardedPipeline::live_stored_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edc_flash::FaultPlan;

    const BB: usize = BLOCK_BYTES as usize;

    fn text_block(i: u64) -> Vec<u8> {
        format!("sharded pipeline block {i} lorem ipsum dolor sit amet ")
            .into_bytes()
            .into_iter()
            .cycle()
            .take(BB)
            .collect()
    }

    fn small(shards: usize) -> ShardedPipeline {
        ShardedPipeline::new(
            shards as u64 * 4 * 1024 * 1024,
            ShardConfig { shards, extent_blocks: 4, ..ShardConfig::default() },
        )
    }

    #[test]
    fn routing_splits_at_extent_boundaries() {
        let s = small(4);
        // Blocks 0..4 are extent 0 (shard 0), 4..8 extent 1 (shard 1), ...
        let pieces = s.pieces(0, 12 * BLOCK_BYTES);
        assert_eq!(
            pieces,
            vec![
                Piece { shard: 0, offset: 0, len: 4 * BLOCK_BYTES },
                Piece { shard: 1, offset: 4 * BLOCK_BYTES, len: 4 * BLOCK_BYTES },
                Piece { shard: 2, offset: 8 * BLOCK_BYTES, len: 4 * BLOCK_BYTES },
            ]
        );
        // Extent wrap-around: extent 4 routes back to shard 0.
        assert_eq!(s.shard_of_block(16), 0);
        // Mid-extent start stops at the extent edge.
        let pieces = s.pieces(2 * BLOCK_BYTES, 4 * BLOCK_BYTES);
        assert_eq!(
            pieces,
            vec![
                Piece { shard: 0, offset: 2 * BLOCK_BYTES, len: 2 * BLOCK_BYTES },
                Piece { shard: 1, offset: 4 * BLOCK_BYTES, len: 2 * BLOCK_BYTES },
            ]
        );
    }

    #[test]
    fn writes_read_back_across_shards() {
        for shards in [1, 2, 3, 8] {
            let s = small(shards);
            let mut now = 0u64;
            for i in 0..64u64 {
                s.write(now, i * BLOCK_BYTES, &text_block(i)).unwrap();
                now += 1_000_000;
            }
            s.flush_all(now).unwrap();
            for i in 0..64u64 {
                assert_eq!(
                    s.read(now, i * BLOCK_BYTES, BLOCK_BYTES).unwrap(),
                    text_block(i),
                    "block {i} with {shards} shards"
                );
            }
            // A single spanning read crosses every shard.
            let all = s.read(now, 0, 64 * BLOCK_BYTES).unwrap();
            for i in 0..64u64 {
                assert_eq!(&all[i as usize * BB..(i as usize + 1) * BB], &text_block(i));
            }
        }
    }

    #[test]
    fn spanning_write_lands_piecewise() {
        let s = small(2);
        // One 8-block write spans extents 0 (shard 0) and 1 (shard 1).
        let data: Vec<u8> = (0..8u64).flat_map(text_block).collect();
        s.write(0, 0, &data).unwrap();
        s.flush_all(1).unwrap();
        assert_eq!(s.read(2, 0, 8 * BLOCK_BYTES).unwrap(), data);
        // Both shards got some of it.
        let s0 = s.with_shard(0, |p| p.stats().logical_written);
        let s1 = s.with_shard(1, |p| p.stats().logical_written);
        assert_eq!(s0, 4 * BLOCK_BYTES);
        assert_eq!(s1, 4 * BLOCK_BYTES);
    }

    #[test]
    fn unaligned_batch_rejected_before_any_write() {
        let s = small(2);
        let good = text_block(0);
        let err = s.write_batch(&[
            BatchWrite { now_ns: 0, offset: 0, data: &good },
            BatchWrite { now_ns: 0, offset: 123, data: &good },
        ]);
        assert!(err.is_err());
        assert_eq!(s.stats().logical_written, 0, "validation must precede acceptance");
    }

    #[test]
    fn stats_aggregate_across_shards() {
        let s = small(4);
        for i in 0..32u64 {
            s.write(i, i * BLOCK_BYTES, &text_block(i)).unwrap();
        }
        s.flush_all(99).unwrap();
        let stats = s.stats();
        assert_eq!(stats.logical_written, 32 * BLOCK_BYTES);
        assert_eq!(stats.mapped_blocks, 32);
        let per_shard: u64 = (0..4).map(|i| s.with_shard(i, |p| p.stats().logical_written)).sum();
        assert_eq!(per_shard, stats.logical_written);
        assert!(stats.journal_records > 0);
        assert!(stats.compression_ratio() >= 1.0);
    }

    #[test]
    fn recover_composes_per_shard_journals() {
        let s = small(4);
        let mut now = 0;
        for i in 0..48u64 {
            s.write(now, i * BLOCK_BYTES, &text_block(i)).unwrap();
            now += 500_000;
        }
        s.flush_all(now).unwrap();
        let report = s.recover().unwrap();
        assert!(report.replayed_runs > 0);
        assert!(!report.torn_tail);
        assert_eq!(report.payload_mismatches, 0);
        for i in 0..48u64 {
            assert_eq!(s.read(now, i * BLOCK_BYTES, BLOCK_BYTES).unwrap(), text_block(i));
        }
    }

    #[test]
    fn legacy_single_shard_journal_recovers_through_sharded_front_end() {
        // A store written entirely through the pre-sharding API...
        let mut legacy = EdcPipeline::new(8 * 1024 * 1024, PipelineConfig::default());
        let mut now = 0;
        for i in 0..32u64 {
            legacy.write(now, i * BLOCK_BYTES, &text_block(i)).unwrap();
            now += 1_000_000;
        }
        legacy.flush_all(now).unwrap();
        assert!(legacy.stats().journal_records > 0);
        // ...adopted by the sharded front-end: its journal (shard bits
        // zero) replays through ShardedPipeline::recover unchanged.
        let s = ShardedPipeline::from_pipeline(legacy);
        let report = s.recover().unwrap();
        assert!(report.replayed_runs > 0);
        assert_eq!(report.payload_mismatches, 0);
        for i in 0..32u64 {
            assert_eq!(s.read(now, i * BLOCK_BYTES, BLOCK_BYTES).unwrap(), text_block(i));
        }
    }

    #[test]
    fn power_cut_on_one_shard_recovers_fleet_wide() {
        let s = small(2);
        let mut now = 0;
        for i in 0..16u64 {
            s.write(now, i * BLOCK_BYTES, &text_block(i)).unwrap();
            now += 1_000_000;
        }
        s.flush_all(now).unwrap();
        // Cut shard 1's power at its very next page program; shard 0 stays
        // healthy. The doomed write routes to blocks 4..8 → extent 1 →
        // shard 1.
        s.with_shard(1, |p| {
            p.set_fault_plan(FaultPlan {
                power_cut_after_programs: Some(0),
                ..FaultPlan::none()
            })
        });
        let doomed = text_block(99);
        let r = s.write(now, 4 * BLOCK_BYTES, &doomed);
        // The write may be buffered (cut trips at the flush) — force it.
        let flushed = r.and_then(|_| s.flush_all(now + 1));
        assert!(flushed.is_err(), "the armed cut must fire during the flush");
        assert!(!s.with_shard(1, |p| p.powered()));
        // Whole-front-end recovery brings every shard back; everything
        // journaled before the cut survives, the doomed write does not.
        let report = s.recover().unwrap();
        assert!(report.replayed_runs > 0);
        for i in 0..16u64 {
            assert_eq!(
                s.read(now, i * BLOCK_BYTES, BLOCK_BYTES).unwrap(),
                text_block(i),
                "journaled block {i} must survive the cut"
            );
        }
    }

    #[test]
    fn scrub_and_verify_aggregate_clean_reports() {
        let s = small(3);
        for i in 0..24u64 {
            s.write(i, i * BLOCK_BYTES, &text_block(i)).unwrap();
        }
        s.flush_all(25).unwrap();
        let v = s.verify().unwrap();
        assert_eq!(v.scanned, v.clean);
        assert!(v.scanned > 0);
        assert_eq!(v.repaired, 0);
        let sc = s.scrub().unwrap();
        assert_eq!(sc.scanned, v.scanned);
        assert_eq!(sc.clean, sc.scanned);
    }

    #[test]
    fn recompress_fans_out_and_preserves_reads() {
        // 4-ary content with a pinned-Lzf ladder: plenty of headroom for
        // the background pass to upgrade cold runs to Deflate.
        let lowent = |seed: u64| -> Vec<u8> {
            let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            (0..4 * BB)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    b"acgt"[(x >> 60) as usize & 3]
                })
                .collect()
        };
        let s = ShardedPipeline::new(
            4 * 8 * 1024 * 1024,
            ShardConfig {
                shards: 4,
                extent_blocks: 4,
                pipeline: PipelineConfig {
                    selector: crate::selector::SelectorConfig {
                        rungs: vec![crate::selector::LadderRung {
                            max_calc_iops: f64::INFINITY,
                            codec: edc_compress::CodecId::Lzf,
                        }],
                    },
                    ..PipelineConfig::default()
                },
            },
        );
        let mut now = 0u64;
        let mut expect = Vec::new();
        for i in 0..16u64 {
            let data = lowent(i);
            s.write(now, i * 4 * BLOCK_BYTES, &data).unwrap();
            now += 1_000_000;
            expect.push((i * 4 * BLOCK_BYTES, data));
        }
        s.flush_all(now).unwrap();
        // Long silence cools every extent on every shard.
        now += 400_000_000_000;
        let report = s.recompress(now, CodecId::Deflate, usize::MAX).unwrap();
        assert!(report.recompressed > 0, "{report:?}");
        assert_eq!(report.skipped_unreadable, 0);
        // The merged stats see the per-shard counters.
        assert_eq!(s.stats().recompressed_runs, report.recompressed);
        // More than one shard did work (extents stripe round-robin).
        let busy = (0..4)
            .filter(|&i| s.with_shard(i, |p| p.stats().recompressed_runs) > 0)
            .count();
        assert!(busy > 1, "recompression stayed on {busy} shard(s)");
        for (i, (off, data)) in expect.iter().enumerate() {
            assert_eq!(
                &s.read(now + i as u64, *off, data.len() as u64).unwrap(),
                data,
                "run {i} changed by sharded recompression"
            );
        }
        assert_eq!(s.verify().unwrap().unrecoverable, 0);
    }

    #[test]
    #[should_panic(expected = "shard count")]
    fn rejects_zero_shards() {
        let _ = ShardedPipeline::new(
            1024 * 1024,
            ShardConfig { shards: 0, ..ShardConfig::default() },
        );
    }

    #[test]
    #[should_panic(expected = "shard count")]
    fn rejects_more_than_max_shards() {
        let _ = ShardedPipeline::new(
            64 * 1024 * 1024,
            ShardConfig { shards: MAX_SHARDS + 1, ..ShardConfig::default() },
        );
    }
}
