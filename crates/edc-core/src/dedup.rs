//! Content-defined dedup front-end (ROADMAP item 2).
//!
//! Real storage mixes are not just partly incompressible — they are
//! heavily *duplicated* (El-Shimi et al., cited in the paper's §I), and a
//! dedup hit is the cheapest write the pipeline can do: it skips
//! compression, quantization, parity and the flash program entirely.
//! This module supplies the three pieces the pipeline composes:
//!
//! * [`content_hash64`] — a dependency-free seeded 64-bit content hash
//!   (multi-lane multiply/rotate over 32-byte stripes, splitmix-style
//!   finalizer) used as the dedup key. Collisions are *expected* to be
//!   handled by the caller: the pipeline byte-compares against the stored
//!   run before sharing, so the hash only has to be fast and well mixed,
//!   never cryptographic.
//! * [`GearTable`] + [`chunk_blocks`] — a block-granular FastCDC-style
//!   chunker. A gear hash rolls over the last 64 bytes of each 4 KiB
//!   block and cut decisions are made only at block boundaries (the
//!   mapping is block-granular, so sub-block cuts could never be
//!   shared). Normalized chunking uses a harder mask before the normal
//!   point and an easier one after, keeping chunk sizes centred without
//!   a minimum/maximum cliff.
//! * [`DedupIndex`] — the content-addressed run index and refcount
//!   ledger: hash → candidate device offsets, and per live run the set
//!   of referrers (logical `run_start`s) with their live block counts.
//!   The ledger mirrors the mapping; `verify_dedup` cross-checks the two
//!   both ways like the FTL's GC-bucket audit.
//!
//! The ledger is rebuilt on recovery from journaled `Ref` records (see
//! [`crate::journal`]): legacy journals contain no `Ref` records, so they
//! replay with every refcount = 1, exactly the pre-dedup behaviour.

use crate::mapping::MappingEntry;
use std::collections::HashMap;

/// Multiplier lane constants (odd, high-entropy; xxHash/Murmur lineage).
const P1: u64 = 0x9E37_79B1_85EB_CA87;
const P2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const P3: u64 = 0x1656_67B1_9E37_79F9;
const P4: u64 = 0x2545_F491_4F6C_DD1D;

/// SplitMix64 step: the standard 64-bit finalizer/stream generator.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seeded, dependency-free 64-bit content hash.
///
/// Four independent multiply/rotate lanes consume 32-byte stripes, the
/// tail is folded in 8 bytes at a time, and a splitmix-style finalizer
/// mixes in the length. Throughput is measured by `bench-codecs`
/// (`content_hash64/4KiB` and `/64KiB` cases).
///
/// Published test vectors (pinned by the `hash_test_vectors` unit test):
///
/// | input                      | seed | hash                 |
/// |----------------------------|------|----------------------|
/// | `""`                       | 0    | `0x7f0f_ca9c_d3cc_22f9` |
/// | `""`                       | 1    | `0x4804_7a10_7265_aaf2` |
/// | `"abc"`                    | 0    | `0x831a_cdd1_3a4e_ae4b` |
/// | `"abc"`                    | 7    | `0x16d9_e193_62f3_0782` |
/// | `[0u8; 4096]`              | 0    | `0x0364_4c37_f594_c8b8` |
/// | `0,1,2,...,255` (×16)      | 42   | `0xe538_19f3_f42f_0a93` |
#[must_use]
pub fn content_hash64(data: &[u8], seed: u64) -> u64 {
    let mut lanes = [
        seed ^ P1,
        seed.wrapping_mul(P2) ^ P3,
        seed.rotate_left(32) ^ P4,
        seed.wrapping_add(P3) ^ P2,
    ];
    let mut chunks = data.chunks_exact(32);
    for c in &mut chunks {
        for (l, w) in c.chunks_exact(8).enumerate() {
            let w = u64::from_le_bytes(w.try_into().expect("8-byte stripe"));
            lanes[l] = (lanes[l] ^ w).wrapping_mul(P1).rotate_left(31);
        }
    }
    let mut h = lanes[0]
        .rotate_left(1)
        .wrapping_add(lanes[1].rotate_left(7))
        .wrapping_add(lanes[2].rotate_left(12))
        .wrapping_add(lanes[3].rotate_left(18));
    let rest = chunks.remainder();
    let mut words = rest.chunks_exact(8);
    for w in &mut words {
        let w = u64::from_le_bytes(w.try_into().expect("8-byte word"));
        h = (h ^ w).wrapping_mul(P2).rotate_left(27);
    }
    for &b in words.remainder() {
        h = (h ^ u64::from(b)).wrapping_mul(P3);
    }
    h ^= data.len() as u64;
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

/// Dedup front-end configuration ([`crate::pipeline::PipelineConfig::dedup`]).
///
/// With `enabled = false` (the default) the pipeline takes exactly the
/// pre-dedup path: no hashing, no chunking, bit-identical behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DedupConfig {
    /// Master switch; off by default.
    pub enabled: bool,
    /// Seed for both the gear table and the content hash.
    pub seed: u64,
    /// No cut before this many blocks (chunks below it only at run end).
    pub min_chunk_blocks: u32,
    /// Normalization point: the cut mask relaxes past this length.
    pub normal_chunk_blocks: u32,
    /// Forced cut at this many blocks.
    pub max_chunk_blocks: u32,
}

impl Default for DedupConfig {
    fn default() -> Self {
        DedupConfig {
            enabled: false,
            seed: 0xEDC0_DE0D,
            min_chunk_blocks: 2,
            normal_chunk_blocks: 4,
            max_chunk_blocks: 16,
        }
    }
}

/// Mask applied before the normal point (harder to cut: 1-in-128 blocks).
const SMALL_MASK: u64 = (1 << 7) - 1;
/// Mask applied at/after the normal point (easier: 1-in-32 blocks).
const LARGE_MASK: u64 = (1 << 5) - 1;
/// Bytes of each block the gear hash rolls over (its effective window).
const GEAR_WINDOW: usize = 64;

/// 256-entry gear table for the rolling hash, derived from the seed by a
/// splitmix64 stream so two stores with the same seed cut identically.
#[derive(Debug, Clone)]
pub struct GearTable {
    gear: [u64; 256],
}

impl GearTable {
    /// Build the table for `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut state = seed ^ P4;
        let mut gear = [0u64; 256];
        for g in &mut gear {
            *g = splitmix64(&mut state);
        }
        GearTable { gear }
    }
}

/// Split a merged run's payload into content-defined chunks, returning
/// chunk lengths in 4 KiB blocks (summing to `data.len() / 4096`).
///
/// `data` must be whole 4 KiB blocks. The gear hash rolls over the last
/// `GEAR_WINDOW` bytes of every block; a block ends a chunk when the
/// rolled hash masks to zero (`SMALL_MASK` before
/// `normal_chunk_blocks`, `LARGE_MASK` after) or the chunk reaches
/// `max_chunk_blocks`. Cuts depend only on content, so a duplicate run
/// written at a different logical address chunks identically.
#[must_use]
pub fn chunk_blocks(gear: &GearTable, config: &DedupConfig, data: &[u8]) -> Vec<u32> {
    let bb = crate::scheme::BLOCK_BYTES as usize;
    debug_assert!(data.len().is_multiple_of(bb));
    let total = (data.len() / bb) as u32;
    if total <= config.min_chunk_blocks {
        return vec![total];
    }
    let mut cuts = Vec::with_capacity(2);
    let mut h = 0u64;
    let mut len = 0u32;
    for b in 0..total as usize {
        let tail = &data[b * bb + bb - GEAR_WINDOW..(b + 1) * bb];
        for &byte in tail {
            h = (h << 1).wrapping_add(gear.gear[byte as usize]);
        }
        len += 1;
        let cut = if len >= config.max_chunk_blocks {
            true
        } else if len < config.min_chunk_blocks {
            false
        } else if len < config.normal_chunk_blocks {
            h & SMALL_MASK == 0
        } else {
            h & LARGE_MASK == 0
        };
        if cut {
            cuts.push(len);
            len = 0;
            h = 0;
        }
    }
    if len > 0 {
        cuts.push(len);
    }
    cuts
}

/// Aggregate refcount-ledger counters, reported by
/// [`EdcPipeline::verify_dedup`](crate::pipeline::EdcPipeline::verify_dedup).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DedupReport {
    /// Live runs (distinct device offsets) audited.
    pub runs: u64,
    /// Runs with more than one referrer.
    pub shared_runs: u64,
    /// Referrers beyond the first, summed over all shared runs.
    pub extra_refs: u64,
}

impl DedupReport {
    /// Fold another shard's report into this one.
    pub fn merge(&mut self, other: &DedupReport) {
        self.runs += other.runs;
        self.shared_runs += other.shared_runs;
        self.extra_refs += other.extra_refs;
    }
}

/// Per-run ledger state: the template entry reads decode through, the
/// content hash (if known), and every referrer's live block count.
#[derive(Debug, Clone)]
struct RunState {
    /// Content hash of the run's *raw* bytes; `None` for runs adopted
    /// from journal `Put` records on recovery (their hash is volatile —
    /// a perf-only loss: they just can't be dedup targets until the
    /// hash index relearns them).
    hash: Option<u64>,
    /// The mapping entry new sharers clone their physical fields from.
    template: MappingEntry,
    /// `run_start` → live (not yet overwritten) blocks of that referrer.
    referrers: HashMap<u64, u32>,
}

/// The content-addressed run index + refcount ledger (one per pipeline,
/// so per shard on a sharded store).
#[derive(Debug, Clone, Default)]
pub struct DedupIndex {
    /// Content hash → candidate device offsets (byte-compared by the
    /// caller before sharing; collisions just mean a wasted compare).
    by_hash: HashMap<u64, Vec<u64>>,
    /// Device offset → ledger state for every tracked live run.
    runs: HashMap<u64, RunState>,
}

impl DedupIndex {
    /// Fresh empty index.
    #[must_use]
    pub fn new() -> Self {
        DedupIndex::default()
    }

    /// Forget everything (start of recovery).
    pub fn reset(&mut self) {
        self.by_hash.clear();
        self.runs.clear();
    }

    /// True when the ledger tracks no runs at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Candidate device offsets whose stored content hashed to `hash`.
    #[must_use]
    pub fn candidates(&self, hash: u64) -> &[u64] {
        self.by_hash.get(&hash).map_or(&[][..], Vec::as_slice)
    }

    /// The template entry of the run at `offset`, if tracked and live.
    #[must_use]
    pub fn template(&self, offset: u64) -> Option<&MappingEntry> {
        self.runs.get(&offset).map(|s| &s.template)
    }

    /// The content hash recorded for the run at `offset` (None when the
    /// run is untracked or was adopted without a hash).
    #[must_use]
    pub fn content_hash(&self, offset: u64) -> Option<u64> {
        self.runs.get(&offset).and_then(|s| s.hash)
    }

    /// Whether the ledger tracks the run at `offset`.
    #[must_use]
    pub fn tracked(&self, offset: u64) -> bool {
        self.runs.contains_key(&offset)
    }

    /// Referrers beyond the first for the run at `offset` (0 when
    /// untracked): the "outstanding extra refs" GC eligibility gate.
    #[must_use]
    pub fn extra_refs(&self, offset: u64) -> u64 {
        self.runs.get(&offset).map_or(0, |s| s.referrers.len().saturating_sub(1) as u64)
    }

    /// All referrers of the run at `offset` as sorted
    /// `(run_start, live_blocks)` pairs; `None` when untracked.
    #[must_use]
    pub fn referrers(&self, offset: u64) -> Option<Vec<(u64, u32)>> {
        let state = self.runs.get(&offset)?;
        let mut out: Vec<(u64, u32)> = state.referrers.iter().map(|(&s, &n)| (s, n)).collect();
        out.sort_unstable();
        Some(out)
    }

    /// The full ledger as sorted `(offset, referrers)` rows, for the
    /// two-way mapping cross-check.
    #[must_use]
    pub fn ledger(&self) -> Vec<(u64, Vec<(u64, u32)>)> {
        let mut out: Vec<(u64, Vec<(u64, u32)>)> = self
            .runs
            .keys()
            .map(|&off| (off, self.referrers(off).expect("tracked run")))
            .collect();
        out.sort_unstable_by_key(|(off, _)| *off);
        out
    }

    /// Start tracking a freshly stored unique run: its sole referrer is
    /// the writer itself. Replaces any stale state at the same offset.
    pub fn insert_unique(&mut self, hash: Option<u64>, entry: MappingEntry) {
        self.purge(entry.device_offset);
        if let Some(h) = hash {
            self.by_hash.entry(h).or_default().push(entry.device_offset);
        }
        let mut referrers = HashMap::with_capacity(1);
        referrers.insert(entry.run_start, entry.run_blocks);
        self.runs.insert(entry.device_offset, RunState { hash, template: entry, referrers });
    }

    /// Record that the run at `run_start` now shares the run at `offset`
    /// with `blocks` live blocks. Additive: a referrer re-sharing the
    /// same offset (self-overwrite with identical content) gains blocks
    /// *before* the superseded mapping entries release theirs.
    ///
    /// No-op when the offset is untracked (dedup disabled).
    pub fn add_referrer(&mut self, offset: u64, run_start: u64, blocks: u32) {
        if let Some(state) = self.runs.get_mut(&offset) {
            *state.referrers.entry(run_start).or_insert(0) += blocks;
        }
    }

    /// Learn the content hash of an already-tracked run (a `Ref` journal
    /// record carries the hash, re-teaching the index on recovery).
    pub fn learn_hash(&mut self, offset: u64, hash: u64) {
        if let Some(state) = self.runs.get_mut(&offset) {
            if state.hash.is_none() {
                state.hash = Some(hash);
                self.by_hash.entry(hash).or_default().push(offset);
            }
        }
    }

    /// One mapped block of referrer `run_start` stopped pointing at
    /// `offset` (overwritten or dropped). Mirrors
    /// [`SlotStore::release_block_ref`](crate::slots::SlotStore::release_block_ref):
    /// the referrer disappears at zero live blocks and the run is purged
    /// once no referrers remain. No-op when untracked.
    pub fn release_block(&mut self, offset: u64, run_start: u64) {
        let Some(state) = self.runs.get_mut(&offset) else { return };
        if let Some(n) = state.referrers.get_mut(&run_start) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                state.referrers.remove(&run_start);
            }
        }
        if state.referrers.is_empty() {
            self.purge(offset);
        }
    }

    /// Drop the run at `offset` entirely (slot freed or found corrupt).
    pub fn purge(&mut self, offset: u64) {
        let Some(state) = self.runs.remove(&offset) else { return };
        if let Some(h) = state.hash {
            if let Some(list) = self.by_hash.get_mut(&h) {
                list.retain(|&o| o != offset);
                if list.is_empty() {
                    self.by_hash.remove(&h);
                }
            }
        }
    }

    /// The run at `old_offset` was rewritten in place elsewhere: carry
    /// its ledger state (hash, all referrers) to the new offset with
    /// `template` as the new template entry. No-op when untracked.
    pub fn relocate(&mut self, old_offset: u64, template: MappingEntry) {
        let Some(mut state) = self.runs.remove(&old_offset) else { return };
        if let Some(h) = state.hash {
            if let Some(list) = self.by_hash.get_mut(&h) {
                list.retain(|&o| o != old_offset);
                list.push(template.device_offset);
            }
        }
        state.template = template;
        self.runs.insert(template.device_offset, state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edc_compress::CodecId;

    fn entry(run_start: u64, blocks: u32, offset: u64) -> MappingEntry {
        MappingEntry {
            tag: CodecId::None,
            run_start,
            run_blocks: blocks,
            device_offset: offset,
            stored_bytes: u64::from(blocks) * 4096,
            compressed_bytes: u64::from(blocks) * 4096,
            checksum: 0,
            parity: false,
        }
    }

    #[test]
    fn hash_test_vectors() {
        let ramp: Vec<u8> = (0..4096u32).map(|i| (i % 256) as u8).collect();
        for (data, seed, want) in [
            (&b""[..], 0u64, 0x7f0f_ca9c_d3cc_22f9u64),
            (&b""[..], 1, 0x4804_7a10_7265_aaf2),
            (&b"abc"[..], 0, 0x831a_cdd1_3a4e_ae4b),
            (&b"abc"[..], 7, 0x16d9_e193_62f3_0782),
            (&vec![0u8; 4096][..], 0, 0x0364_4c37_f594_c8b8),
            (&ramp[..], 42, 0xe538_19f3_f42f_0a93),
        ] {
            assert_eq!(
                content_hash64(data, seed),
                want,
                "vector (len {}, seed {seed})",
                data.len()
            );
        }
    }

    #[test]
    fn hash_is_seeded_and_input_sensitive() {
        let a = vec![7u8; 8192];
        let mut b = a.clone();
        assert_ne!(content_hash64(&a, 1), content_hash64(&a, 2));
        for flip in [0, 31, 32, 4095, 8191] {
            b[flip] ^= 1;
            assert_ne!(content_hash64(&a, 9), content_hash64(&b, 9), "flip at {flip}");
            b[flip] ^= 1;
        }
        // Length is part of the hash even when content is a prefix.
        assert_ne!(content_hash64(&a[..4096], 9), content_hash64(&a, 9));
    }

    #[test]
    fn chunker_is_content_defined_and_bounded() {
        let config = DedupConfig::default();
        let gear = GearTable::new(config.seed);
        let mut rng = 0x1234u64;
        let data: Vec<u8> = (0..16 * 4096).map(|_| (splitmix64(&mut rng) & 0xFF) as u8).collect();
        let cuts = chunk_blocks(&gear, &config, &data);
        assert_eq!(cuts.iter().sum::<u32>(), 16);
        let (last, body) = cuts.split_last().unwrap();
        for &len in body {
            assert!(len >= config.min_chunk_blocks && len <= config.max_chunk_blocks);
        }
        assert!(*last >= 1 && *last <= config.max_chunk_blocks);
        // Same content cuts the same way regardless of logical position.
        assert_eq!(cuts, chunk_blocks(&gear, &config, &data));
        // A different seed cuts differently on data this size... or at
        // minimum still satisfies the bounds (cut points are seeded).
        let other = chunk_blocks(&GearTable::new(99), &config, &data);
        assert_eq!(other.iter().sum::<u32>(), 16);
        // Short runs never split.
        assert_eq!(chunk_blocks(&gear, &config, &data[..8192]), vec![2]);
        assert_eq!(chunk_blocks(&gear, &config, &data[..4096]), vec![1]);
    }

    #[test]
    fn ledger_refcounts_release_and_purge() {
        let mut idx = DedupIndex::new();
        let e = entry(10, 4, 0);
        idx.insert_unique(Some(0xAB), e);
        assert_eq!(idx.candidates(0xAB), &[0]);
        assert_eq!(idx.extra_refs(0), 0);

        idx.add_referrer(0, 50, 4);
        assert_eq!(idx.extra_refs(0), 1);
        assert_eq!(idx.referrers(0).unwrap(), vec![(10, 4), (50, 4)]);

        // Overwrite two of referrer 50's blocks: still a referrer.
        idx.release_block(0, 50);
        idx.release_block(0, 50);
        assert_eq!(idx.referrers(0).unwrap(), vec![(10, 4), (50, 2)]);
        // Drop the rest: referrer gone, run still tracked.
        idx.release_block(0, 50);
        idx.release_block(0, 50);
        assert_eq!(idx.extra_refs(0), 0);
        assert!(idx.tracked(0));
        // Last referrer's blocks go: run purged, hash index cleaned.
        for _ in 0..4 {
            idx.release_block(0, 10);
        }
        assert!(!idx.tracked(0));
        assert!(idx.candidates(0xAB).is_empty());
    }

    #[test]
    fn self_overwrite_is_additive() {
        // Referrer 10 overwrites itself with identical content: the new
        // write's blocks are added before the superseded entries release
        // theirs, so the referrer never transiently hits zero.
        let mut idx = DedupIndex::new();
        idx.insert_unique(Some(1), entry(10, 4, 0));
        idx.add_referrer(0, 10, 4);
        assert_eq!(idx.referrers(0).unwrap(), vec![(10, 8)]);
        for _ in 0..4 {
            idx.release_block(0, 10);
        }
        assert_eq!(idx.referrers(0).unwrap(), vec![(10, 4)]);
        assert!(idx.tracked(0));
    }

    #[test]
    fn relocate_carries_state_and_rekeys_hash() {
        let mut idx = DedupIndex::new();
        idx.insert_unique(Some(0xCC), entry(10, 4, 0));
        idx.add_referrer(0, 90, 4);
        let new_template = entry(10, 4, 7777);
        idx.relocate(0, new_template);
        assert!(!idx.tracked(0));
        assert_eq!(idx.candidates(0xCC), &[7777]);
        assert_eq!(idx.referrers(7777).unwrap(), vec![(10, 4), (90, 4)]);
        assert_eq!(idx.template(7777).unwrap().device_offset, 7777);
    }
}

