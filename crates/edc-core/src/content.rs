//! Content model: per-block compressibility for trace replay.
//!
//! The replayed traces carry no payload, so — like the paper, which used
//! SDGen to synthesize content with realistic compressibility — the
//! simulator assigns each logical block a content class and derives its
//! compressed size per codec from a **calibration table measured on this
//! crate's real codecs** over `edc-datagen` blocks. Calibration happens
//! once per model (real compressions of every class at two sizes, plus the
//! real sampling estimator); replay then uses deterministic table lookups
//! with per-block jitter, which keeps multi-million-request experiments
//! fast while staying anchored to genuinely measured ratios.

use edc_compress::{codec_by_id, CodecId, Estimator};
use edc_datagen::{BlockClass, ContentGenerator, DataMix};

/// Calibration parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CalibrationConfig {
    /// Sample blocks per (class, size) cell.
    pub samples: usize,
    /// Small block size (bytes) — the unmerged 4 KiB write.
    pub small_bytes: usize,
    /// Large block size (bytes) — a full merged run.
    pub large_bytes: usize,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        CalibrationConfig { samples: 3, small_bytes: 4096, large_bytes: 65536 }
    }
}

/// Per-block content/compressibility model.
#[derive(Debug, Clone)]
pub struct ContentModel {
    seed: u64,
    small_bytes: f64,
    large_bytes: f64,
    /// `[class][codec] -> (fraction_small, fraction_large)`, codec indexed
    /// by `tag - 1`.
    table: Vec<[(f64, f64); 4]>,
    /// Estimator-probe fraction per class (what EDC's sampling check sees).
    probe: Vec<f64>,
    /// Class probability masses in `BlockClass::ALL` order, cached at
    /// calibration (`DataMix` only exposes RNG sampling).
    class_pmf: [f64; 6],
}

/// splitmix64 — deterministic per-block hashing.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl ContentModel {
    /// Calibrate a model for `mix` with deterministic `seed`.
    pub fn calibrate(mix: DataMix, seed: u64, cal: CalibrationConfig) -> Self {
        assert!(cal.samples >= 1);
        assert!(cal.small_bytes >= 512 && cal.large_bytes > cal.small_bytes);
        let mut generator = ContentGenerator::new(seed ^ 0xCA11_B4A7E, mix.clone());
        let estimator = Estimator::default();
        let mut table = Vec::with_capacity(BlockClass::ALL.len());
        let mut probe = Vec::with_capacity(BlockClass::ALL.len());
        for class in BlockClass::ALL {
            let mut cell = [(0.0f64, 0.0f64); 4];
            let mut probe_sum = 0.0f64;
            for s in 0..cal.samples {
                let small = generator.block_of(class, cal.small_bytes);
                let large = generator.block_of(class, cal.large_bytes);
                probe_sum += estimator.estimate(&small).fraction;
                let _ = s;
                for (slot, id) in CodecId::ALL_CODECS.iter().enumerate() {
                    let codec = codec_by_id(*id).expect("real codec");
                    cell[slot].0 += codec.compress(&small).len() as f64 / small.len() as f64;
                    cell[slot].1 += codec.compress(&large).len() as f64 / large.len() as f64;
                }
            }
            let n = cal.samples as f64;
            for c in cell.iter_mut() {
                c.0 /= n;
                c.1 /= n;
            }
            table.push(cell);
            probe.push(probe_sum / n);
        }
        // Estimate the class probability masses once: DataMix only exposes
        // RNG sampling, so draw a deterministic reference sample.
        let class_pmf = {
            use edc_datagen::Rng64;
            let mut rng = Rng64::seed_from_u64(0xC0FFEE);
            let mut counts = [0usize; 6];
            const DRAWS: usize = 65_536;
            for _ in 0..DRAWS {
                let c = mix.sample(&mut rng);
                counts[BlockClass::ALL.iter().position(|&x| x == c).expect("known class")] += 1;
            }
            let mut out = [0.0f64; 6];
            for i in 0..6 {
                out[i] = counts[i] as f64 / DRAWS as f64;
            }
            out
        };
        ContentModel {
            seed,
            small_bytes: cal.small_bytes as f64,
            large_bytes: cal.large_bytes as f64,
            table,
            probe,
            class_pmf,
        }
    }

    /// The content class of a logical block (stable per model).
    pub fn class_of(&self, block: u64) -> BlockClass {
        let h = mix64(block ^ self.seed);
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        let mut acc = 0.0;
        for (i, &w) in self.class_pmf.iter().enumerate() {
            acc += w;
            if u < acc {
                return BlockClass::ALL[i];
            }
        }
        *BlockClass::ALL.last().expect("non-empty")
    }

    /// Compressed fraction (compressed/original) for a run of `bytes`
    /// starting at logical block `start_block`, under `codec`.
    pub fn fraction(&self, start_block: u64, blocks: u32, codec: CodecId, bytes: u64) -> f64 {
        if codec == CodecId::None {
            return 1.0;
        }
        let slot = codec.tag() as usize - 1;
        // Average the class fractions across the run's blocks.
        let mut fs = 0.0;
        let mut fl = 0.0;
        for b in start_block..start_block + u64::from(blocks) {
            let class = self.class_of(b);
            let idx = BlockClass::ALL.iter().position(|&x| x == class).expect("known class");
            let (s, l) = self.table[idx][slot];
            fs += s;
            fl += l;
        }
        fs /= f64::from(blocks);
        fl /= f64::from(blocks);
        // Interpolate in log-size between the calibrated anchors.
        let t = ((bytes as f64).ln() - self.small_bytes.ln())
            / (self.large_bytes.ln() - self.small_bytes.ln());
        let t = t.clamp(0.0, 1.0);
        let base = fs + (fl - fs) * t;
        // Deterministic ±8 % per-run jitter (content heterogeneity).
        let h = mix64(start_block.wrapping_mul(31).wrapping_add(u64::from(codec.tag())) ^ self.seed);
        let jitter = 0.92 + 0.16 * ((h >> 11) as f64 / (1u64 << 53) as f64);
        (base * jitter).clamp(0.01, 1.05)
    }

    /// What EDC's sampling estimator would report for this run — anchored
    /// to the real [`Estimator`] measured at calibration.
    pub fn estimate_fraction(&self, start_block: u64, blocks: u32) -> f64 {
        let mut sum = 0.0;
        for b in start_block..start_block + u64::from(blocks) {
            let class = self.class_of(b);
            let idx = BlockClass::ALL.iter().position(|&x| x == class).expect("known class");
            sum += self.probe[idx];
        }
        let base = sum / f64::from(blocks);
        let h = mix64(start_block.wrapping_mul(17) ^ self.seed ^ 0xE57);
        let jitter = 0.95 + 0.10 * ((h >> 11) as f64 / (1u64 << 53) as f64);
        (base * jitter).clamp(0.01, 1.2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cal() -> CalibrationConfig {
        CalibrationConfig { samples: 1, small_bytes: 4096, large_bytes: 8192 }
    }

    fn model() -> ContentModel {
        ContentModel::calibrate(DataMix::primary_storage(), 7, quick_cal())
    }

    #[test]
    fn class_assignment_is_stable() {
        let m = model();
        for b in 0..100 {
            assert_eq!(m.class_of(b), m.class_of(b));
        }
    }

    #[test]
    fn class_distribution_tracks_mix() {
        let m = model();
        let incompressible = (0..20_000u64)
            .filter(|&b| m.class_of(b).is_incompressible())
            .count() as f64
            / 20_000.0;
        let want = DataMix::primary_storage().incompressible_fraction();
        assert!(
            (incompressible - want).abs() < 0.05,
            "incompressible share {incompressible:.3} vs mix {want:.3}"
        );
    }

    #[test]
    fn ratio_ordering_matches_codecs() {
        // Over many compressible runs the strong codec must produce smaller
        // fractions than the fast one — inherited from real calibration.
        let m = model();
        let mut lzf = 0.0;
        let mut bwt = 0.0;
        let mut n = 0.0;
        for b in 0..2000u64 {
            if m.class_of(b).is_incompressible() {
                continue;
            }
            lzf += m.fraction(b, 1, CodecId::Lzf, 4096);
            bwt += m.fraction(b, 1, CodecId::Bwt, 4096);
            n += 1.0;
        }
        assert!(n > 100.0);
        assert!(bwt / n < lzf / n, "bwt {:.3} !< lzf {:.3}", bwt / n, lzf / n);
    }

    #[test]
    fn none_codec_fraction_is_one() {
        let m = model();
        assert_eq!(m.fraction(0, 1, CodecId::None, 4096), 1.0);
    }

    #[test]
    fn larger_runs_compress_no_worse() {
        // §III-E: "the larger the data block, the higher the compression
        // ratio" — compare the same blocks at small vs merged sizes so the
        // class mix is held constant.
        let m = model();
        let mut small = 0.0;
        let mut large = 0.0;
        let mut n = 0.0;
        for b in 0..4000u64 {
            if m.class_of(b).is_incompressible() {
                continue;
            }
            small += m.fraction(b, 1, CodecId::Deflate, 4096);
            large += m.fraction(b, 1, CodecId::Deflate, 65536);
            n += 1.0;
        }
        assert!(large / n <= small / n + 0.02, "large {:.3} vs small {:.3}", large / n, small / n);
    }

    #[test]
    fn estimator_separates_random_from_zero() {
        let m = model();
        // Find one block of each extreme class.
        let zero = (0..10_000u64).find(|&b| m.class_of(b) == BlockClass::Zero).unwrap();
        let random = (0..10_000u64).find(|&b| m.class_of(b) == BlockClass::Random).unwrap();
        assert!(m.estimate_fraction(zero, 1) < 0.3);
        assert!(m.estimate_fraction(random, 1) > 0.75);
    }

    #[test]
    fn fractions_are_deterministic() {
        let a = model();
        let b = model();
        for blk in 0..50u64 {
            assert_eq!(
                a.fraction(blk, 4, CodecId::Deflate, 16384),
                b.fraction(blk, 4, CodecId::Deflate, 16384)
            );
        }
    }

    #[test]
    fn fractions_bounded() {
        let m = model();
        for blk in 0..500u64 {
            for id in CodecId::ALL_CODECS {
                let f = m.fraction(blk, 1, id, 4096);
                assert!((0.01..=1.05).contains(&f), "{id} fraction {f}");
            }
        }
    }
}
