//! The unified op-dispatch surface: one serializable [`Op`] enum, one
//! [`Store`] trait, one [`Store::dispatch`] entry point.
//!
//! Before this module the pipeline had two front-ends with diverging
//! method sets — [`EdcPipeline`](crate::pipeline::EdcPipeline)
//! (`&mut self`, `now_ns` hand-threaded through every call) and
//! [`ShardedPipeline`](crate::shard::ShardedPipeline) (`&self`, missing
//! `set_hint`/`truncate_journal_bytes`/`fault_stats`) — which made
//! "record every entry point" impossible: there was no single surface to
//! record. [`Op`] closes that: every externally observable mutation of a
//! store is a value that can be encoded to bytes, logged, hashed and
//! replayed, and [`Store`] is implemented by both front-ends so the
//! recorder ([`crate::record`]) is generic over them.
//!
//! Outputs are summarized as [`OpOutput`] and digested to a `u64`
//! ([`OpOutput::digest`]) so a replay can diff observable behaviour
//! without storing payload bytes: read contents are captured as
//! `(len, checksum64)`, write results and reports field-by-field. Any
//! behavioural divergence — different codec choice, different allocation,
//! a fault firing at a different point — changes a digest.

use crate::dedup::DedupReport;
use crate::error::EdcError;
use crate::hints::FileTypeHint;
use crate::pipeline::{
    BatchWrite, PipelineStats, ReadError, RecompressReport, RecoveryReport, ScrubReport,
    WriteResult,
};
use edc_compress::{checksum64, CodecId};
use edc_flash::{FaultPlan, FaultStats, FAULT_PLAN_BYTES};

/// One serializable store operation — the unit of record/replay.
///
/// Each op corresponds to one [`Store`] entry point; the timestamp is
/// *not* part of the op because time is drawn from a
/// [`Clock`](crate::clock::Clock) by the dispatcher and recorded
/// alongside the op (time is an input, see [`crate::clock`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Write `data` at byte `offset` (both 4 KiB-aligned).
    Write {
        /// Byte offset of the write (4 KiB-aligned).
        offset: u64,
        /// Payload (whole 4 KiB blocks).
        data: Vec<u8>,
    },
    /// A batch of writes sharing one drawn timestamp.
    WriteBatch {
        /// `(offset, data)` pairs, applied in order.
        writes: Vec<(u64, Vec<u8>)>,
    },
    /// Read `len` bytes at `offset` (both 4 KiB-aligned).
    Read {
        /// Byte offset (4 KiB-aligned).
        offset: u64,
        /// Length in bytes (4 KiB-aligned).
        len: u64,
    },
    /// Drain all buffered and sealed runs ([`Store::flush_all`]).
    Flush,
    /// Verify-and-heal pass over every live run ([`Store::scrub`]).
    Scrub,
    /// Read-only integrity audit ([`Store::verify_store`]).
    Verify,
    /// Rebuild the mapping from the journal ([`Store::recover`]) —
    /// typically after a [`Op::PowerCut`].
    Recover,
    /// Heat-aware background recompression pass.
    RecompressPass {
        /// Codec cold runs are rewritten with.
        target: CodecId,
        /// Rewrite budget (per shard on a sharded store).
        max_rewrites: u64,
    },
    /// Register a file-type hint over `[offset, offset + len)`.
    SetHint {
        /// Byte offset of the hinted range (4 KiB-aligned).
        offset: u64,
        /// Range length in bytes (4 KiB-aligned).
        len: u64,
        /// The hint.
        hint: FileTypeHint,
    },
    /// Replace the fault plan, restarting the decision stream.
    SetFaultPlan(FaultPlan),
    /// Tear shard `shard`'s journal to its first `bytes` bytes
    /// (simulates a cut mid-way through a journal page program).
    TruncateJournal {
        /// Shard index (0 on a plain pipeline).
        shard: u32,
        /// Bytes of journal to keep.
        bytes: u64,
    },
    /// Cut power immediately at this op boundary (deterministic "yank
    /// the cord now", independent of the program clock).
    PowerCut,
    /// Snapshot aggregate counters — recording one makes the replayer
    /// diff the full [`PipelineStats`] at that point.
    Stats,
    /// Cross-check the dedup refcount ledger against the mapping table
    /// both ways ([`Store::verify_dedup`]).
    VerifyDedup,
}

/// Byte tags of the [`Op`] wire encoding (one per variant).
mod tag {
    pub const WRITE: u8 = 1;
    pub const WRITE_BATCH: u8 = 2;
    pub const READ: u8 = 3;
    pub const FLUSH: u8 = 4;
    pub const SCRUB: u8 = 5;
    pub const VERIFY: u8 = 6;
    pub const RECOVER: u8 = 7;
    pub const RECOMPRESS: u8 = 8;
    pub const SET_HINT: u8 = 9;
    pub const SET_FAULT_PLAN: u8 = 10;
    pub const TRUNCATE_JOURNAL: u8 = 11;
    pub const POWER_CUT: u8 = 12;
    pub const STATS: u8 = 13;
    pub const VERIFY_DEDUP: u8 = 14;
}

/// Stable u8 encoding of a [`FileTypeHint`] for the wire format.
fn hint_to_u8(h: FileTypeHint) -> u8 {
    match h {
        FileTypeHint::Precompressed => 0,
        FileTypeHint::Text => 1,
        FileTypeHint::Database => 2,
        FileTypeHint::VmImage => 3,
    }
}

fn hint_from_u8(b: u8) -> Option<FileTypeHint> {
    Some(match b {
        0 => FileTypeHint::Precompressed,
        1 => FileTypeHint::Text,
        2 => FileTypeHint::Database,
        3 => FileTypeHint::VmImage,
        _ => return None,
    })
}

/// Little-endian cursor over a byte slice; every getter returns `None`
/// past the end so corrupt logs surface as parse failures, not panics.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, at: 0 }
    }

    fn u8(&mut self) -> Option<u8> {
        let b = *self.buf.get(self.at)?;
        self.at += 1;
        Some(b)
    }

    fn u32(&mut self) -> Option<u32> {
        let b = self.buf.get(self.at..self.at + 4)?;
        self.at += 4;
        Some(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Option<u64> {
        let b = self.buf.get(self.at..self.at + 8)?;
        self.at += 8;
        Some(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        let b = self.buf.get(self.at..self.at + n)?;
        self.at += n;
        Some(b)
    }

    fn done(&self) -> bool {
        self.at == self.buf.len()
    }
}

impl Op {
    /// Append the wire encoding of this op to `out` (tag byte followed by
    /// fixed-width little-endian fields; payloads length-prefixed u32).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Op::Write { offset, data } => {
                out.push(tag::WRITE);
                out.extend_from_slice(&offset.to_le_bytes());
                out.extend_from_slice(&(data.len() as u32).to_le_bytes());
                out.extend_from_slice(data);
            }
            Op::WriteBatch { writes } => {
                out.push(tag::WRITE_BATCH);
                out.extend_from_slice(&(writes.len() as u32).to_le_bytes());
                for (offset, data) in writes {
                    out.extend_from_slice(&offset.to_le_bytes());
                    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
                    out.extend_from_slice(data);
                }
            }
            Op::Read { offset, len } => {
                out.push(tag::READ);
                out.extend_from_slice(&offset.to_le_bytes());
                out.extend_from_slice(&len.to_le_bytes());
            }
            Op::Flush => out.push(tag::FLUSH),
            Op::Scrub => out.push(tag::SCRUB),
            Op::Verify => out.push(tag::VERIFY),
            Op::Recover => out.push(tag::RECOVER),
            Op::RecompressPass { target, max_rewrites } => {
                out.push(tag::RECOMPRESS);
                out.push(*target as u8);
                out.extend_from_slice(&max_rewrites.to_le_bytes());
            }
            Op::SetHint { offset, len, hint } => {
                out.push(tag::SET_HINT);
                out.extend_from_slice(&offset.to_le_bytes());
                out.extend_from_slice(&len.to_le_bytes());
                out.push(hint_to_u8(*hint));
            }
            Op::SetFaultPlan(plan) => {
                out.push(tag::SET_FAULT_PLAN);
                out.extend_from_slice(&plan.encode());
            }
            Op::TruncateJournal { shard, bytes } => {
                out.push(tag::TRUNCATE_JOURNAL);
                out.extend_from_slice(&shard.to_le_bytes());
                out.extend_from_slice(&bytes.to_le_bytes());
            }
            Op::PowerCut => out.push(tag::POWER_CUT),
            Op::Stats => out.push(tag::STATS),
            Op::VerifyDedup => out.push(tag::VERIFY_DEDUP),
        }
    }

    /// The wire encoding as a fresh buffer (see [`Op::encode_into`]).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Decode one op that must span exactly `bytes`. Returns `None` on a
    /// bad tag, short/extra bytes, or invalid field values — corrupt logs
    /// fail parsing, they never panic.
    pub fn decode(bytes: &[u8]) -> Option<Op> {
        let mut c = Cursor::new(bytes);
        let op = match c.u8()? {
            tag::WRITE => {
                let offset = c.u64()?;
                let n = c.u32()? as usize;
                Op::Write { offset, data: c.bytes(n)?.to_vec() }
            }
            tag::WRITE_BATCH => {
                let count = c.u32()?;
                let mut writes = Vec::new();
                for _ in 0..count {
                    let offset = c.u64()?;
                    let n = c.u32()? as usize;
                    writes.push((offset, c.bytes(n)?.to_vec()));
                }
                Op::WriteBatch { writes }
            }
            tag::READ => Op::Read { offset: c.u64()?, len: c.u64()? },
            tag::FLUSH => Op::Flush,
            tag::SCRUB => Op::Scrub,
            tag::VERIFY => Op::Verify,
            tag::RECOVER => Op::Recover,
            tag::RECOMPRESS => Op::RecompressPass {
                target: CodecId::from_tag(c.u8()?)?,
                max_rewrites: c.u64()?,
            },
            tag::SET_HINT => Op::SetHint {
                offset: c.u64()?,
                len: c.u64()?,
                hint: hint_from_u8(c.u8()?)?,
            },
            tag::SET_FAULT_PLAN => Op::SetFaultPlan(FaultPlan::decode(c.bytes(FAULT_PLAN_BYTES)?)?),
            tag::TRUNCATE_JOURNAL => Op::TruncateJournal { shard: c.u32()?, bytes: c.u64()? },
            tag::POWER_CUT => Op::PowerCut,
            tag::STATS => Op::Stats,
            tag::VERIFY_DEDUP => Op::VerifyDedup,
            _ => return None,
        };
        c.done().then_some(op)
    }

    /// Short human-readable label for divergence reports.
    pub fn kind(&self) -> &'static str {
        match self {
            Op::Write { .. } => "write",
            Op::WriteBatch { .. } => "write_batch",
            Op::Read { .. } => "read",
            Op::Flush => "flush",
            Op::Scrub => "scrub",
            Op::Verify => "verify",
            Op::Recover => "recover",
            Op::RecompressPass { .. } => "recompress_pass",
            Op::SetHint { .. } => "set_hint",
            Op::SetFaultPlan(_) => "set_fault_plan",
            Op::TruncateJournal { .. } => "truncate_journal",
            Op::PowerCut => "power_cut",
            Op::Stats => "stats",
            Op::VerifyDedup => "verify_dedup",
        }
    }
}

/// The observable outcome of dispatching one [`Op`].
///
/// Read payloads are summarized as `(len, checksum64)` rather than kept,
/// so a log of a million reads stays compact while still pinning every
/// returned byte; errors are summarized by their `Display` string (the
/// typed errors all render deterministically).
#[derive(Debug, Clone, PartialEq)]
pub enum OpOutput {
    /// Runs flushed by a write/flush op, in seal order.
    Writes(Vec<WriteResult>),
    /// A read's returned bytes, summarized.
    Read {
        /// Bytes returned.
        len: u64,
        /// `checksum64(payload, len)` of the returned bytes.
        checksum: u64,
    },
    /// Outcome of [`Op::Recover`].
    Recovery(RecoveryReport),
    /// Outcome of [`Op::Scrub`] or [`Op::Verify`].
    Scrub(ScrubReport),
    /// Outcome of [`Op::RecompressPass`].
    Recompress(RecompressReport),
    /// Outcome of [`Op::Stats`].
    Stats(PipelineStats),
    /// Outcome of [`Op::VerifyDedup`].
    Dedup(DedupReport),
    /// An op with no observable return value succeeded.
    Unit,
    /// The op failed; the typed error, rendered.
    Err(String),
}

impl OpOutput {
    /// Short label for divergence reports.
    pub fn kind(&self) -> &'static str {
        match self {
            OpOutput::Writes(_) => "writes",
            OpOutput::Read { .. } => "read",
            OpOutput::Recovery(_) => "recovery",
            OpOutput::Scrub(_) => "scrub",
            OpOutput::Recompress(_) => "recompress",
            OpOutput::Stats(_) => "stats",
            OpOutput::Dedup(_) => "dedup",
            OpOutput::Unit => "unit",
            OpOutput::Err(_) => "err",
        }
    }

    /// Wire tag of this output variant (stored in the log next to the
    /// digest so a divergence report can name both sides).
    pub fn tag(&self) -> u8 {
        match self {
            OpOutput::Writes(_) => 1,
            OpOutput::Read { .. } => 2,
            OpOutput::Recovery(_) => 3,
            OpOutput::Scrub(_) => 4,
            OpOutput::Recompress(_) => 5,
            OpOutput::Stats(_) => 6,
            OpOutput::Unit => 7,
            OpOutput::Err(_) => 8,
            OpOutput::Dedup(_) => 9,
        }
    }

    /// Collapse the output to a 64-bit digest of a canonical encoding.
    ///
    /// Two outputs digest equal iff every observable field matches —
    /// codec tags, allocated bytes, report counters, read checksums, the
    /// full stats snapshot. This is the value the replayer diffs.
    pub fn digest(&self) -> u64 {
        let mut buf = Vec::with_capacity(128);
        let push = |buf: &mut Vec<u8>, v: u64| buf.extend_from_slice(&v.to_le_bytes());
        match self {
            OpOutput::Writes(rs) => {
                push(&mut buf, rs.len() as u64);
                for r in rs {
                    push(&mut buf, r.start_block);
                    push(&mut buf, u64::from(r.blocks));
                    buf.push(r.tag as u8);
                    push(&mut buf, r.payload_bytes);
                    push(&mut buf, r.allocated_bytes);
                }
            }
            OpOutput::Read { len, checksum } => {
                push(&mut buf, *len);
                push(&mut buf, *checksum);
            }
            OpOutput::Recovery(r) => {
                push(&mut buf, r.scanned_records);
                push(&mut buf, r.replayed_runs);
                push(&mut buf, r.payload_mismatches);
                buf.push(r.torn_tail as u8);
            }
            OpOutput::Scrub(r) => {
                push(&mut buf, r.scanned);
                push(&mut buf, r.clean);
                push(&mut buf, r.repaired);
                push(&mut buf, r.unrecoverable);
            }
            OpOutput::Recompress(r) => {
                push(&mut buf, r.scanned);
                push(&mut buf, r.recompressed);
                push(&mut buf, r.demoted);
                push(&mut buf, r.skipped_precompressed);
                push(&mut buf, r.skipped_demoted);
                push(&mut buf, r.skipped_no_gain);
                push(&mut buf, r.skipped_unreadable);
                push(&mut buf, r.skipped_shared);
                push(&mut buf, r.bytes_reclaimed);
            }
            OpOutput::Stats(s) => {
                push(&mut buf, s.logical_written);
                push(&mut buf, s.physical_written);
                push(&mut buf, s.mapped_blocks);
                push(&mut buf, s.live_runs);
                push(&mut buf, s.journal_records);
                push(&mut buf, s.journal_bytes);
                push(&mut buf, s.degraded_reads);
                push(&mut buf, s.programs);
                push(&mut buf, s.recompressed_runs);
                push(&mut buf, s.demoted_runs);
                push(&mut buf, s.cache.hits);
                push(&mut buf, s.cache.misses);
                push(&mut buf, s.cache.evictions);
                push(&mut buf, s.cache.invalidations);
                push(&mut buf, s.dedup_hits);
                push(&mut buf, s.dedup_elided_bytes);
            }
            OpOutput::Dedup(r) => {
                push(&mut buf, r.runs);
                push(&mut buf, r.shared_runs);
                push(&mut buf, r.extra_refs);
            }
            OpOutput::Unit => {}
            OpOutput::Err(msg) => buf.extend_from_slice(msg.as_bytes()),
        }
        checksum64(&buf, u64::from(self.tag()))
    }

    /// Fold a write/flush outcome into an output record — the same
    /// mapping [`Store::dispatch`] applies, shared with the ring
    /// front-end so a completion posted by a drainer is bit-identical
    /// to the blocking path's output for the same op.
    pub fn from_writes(r: Result<Vec<WriteResult>, EdcError>) -> OpOutput {
        match r {
            Ok(v) => OpOutput::Writes(v),
            Err(e) => OpOutput::Err(e.to_string()),
        }
    }

    /// Fold a read outcome into an output record (length + checksum
    /// summary on success, rendered error otherwise) — shared between
    /// [`Store::dispatch`] and the ring front-end.
    pub fn from_read(r: Result<Vec<u8>, ReadError>) -> OpOutput {
        match r {
            Ok(bytes) => OpOutput::Read {
                len: bytes.len() as u64,
                checksum: checksum64(&bytes, bytes.len() as u64),
            },
            Err(e) => OpOutput::Err(e.to_string()),
        }
    }
}

/// The unified store surface implemented by both
/// [`EdcPipeline`](crate::pipeline::EdcPipeline) and
/// [`ShardedPipeline`](crate::shard::ShardedPipeline).
///
/// All methods take `&mut self` so the trait is object-safe over both
/// front-ends (the sharded store's interior locking makes its `&mut`
/// impls trivially delegate to its `&self` inherent methods). The
/// provided [`Store::dispatch`] is the single entry point the recorder
/// and replayer use: every effect a log can describe funnels through it.
pub trait Store {
    /// Accept a batch of writes (see
    /// [`EdcPipeline::write_batch`](crate::pipeline::EdcPipeline::write_batch)).
    fn write_batch(&mut self, writes: &[BatchWrite<'_>]) -> Result<Vec<WriteResult>, EdcError>;

    /// Read `len` bytes at `offset` (both 4 KiB-aligned).
    fn read(&mut self, now_ns: u64, offset: u64, len: u64) -> Result<Vec<u8>, ReadError>;

    /// Drain all buffered and sealed runs.
    fn flush_all(&mut self, now_ns: u64) -> Result<Vec<WriteResult>, EdcError>;

    /// Rebuild the mapping table from the journal (after a power cut).
    fn recover(&mut self) -> Result<RecoveryReport, crate::journal::RecoveryError>;

    /// Verify-and-heal pass over every live run.
    fn scrub(&mut self) -> Result<ScrubReport, EdcError>;

    /// Read-only integrity audit; nothing is healed or rewritten.
    fn verify_store(&mut self) -> Result<ScrubReport, EdcError>;

    /// Cross-check the dedup refcount ledger against the mapping table
    /// both ways (summed over shards); read-only.
    fn verify_dedup(&mut self) -> Result<DedupReport, EdcError>;

    /// Heat-aware background recompression; `max_rewrites` is the budget
    /// per shard on a sharded store.
    fn recompress(
        &mut self,
        now_ns: u64,
        target: CodecId,
        max_rewrites: usize,
    ) -> Result<RecompressReport, EdcError>;

    /// Register a file-type hint over `[offset, offset + len)` (both
    /// 4 KiB-aligned).
    fn set_hint(&mut self, offset: u64, len: u64, hint: FileTypeHint);

    /// Replace the fault plan, restarting the decision stream. A sharded
    /// store decorrelates shards by mixing the shard index into the seed
    /// (shard 0 keeps the plan's seed verbatim).
    fn set_fault_plan(&mut self, plan: FaultPlan);

    /// Injected-fault counters so far (summed over shards).
    fn fault_stats(&mut self) -> FaultStats;

    /// Tear shard `shard`'s journal to its first `bytes` bytes.
    fn truncate_journal_bytes(&mut self, shard: usize, bytes: usize);

    /// Cut power on every shard immediately.
    fn cut_power(&mut self);

    /// Whether every shard currently has power.
    fn powered(&mut self) -> bool;

    /// One aggregate counter snapshot.
    fn stats(&mut self) -> PipelineStats;

    /// Number of shards (1 for a plain pipeline).
    fn shard_count(&self) -> usize;

    /// Current live on-flash footprint in bytes.
    fn live_stored_bytes(&mut self) -> u64;

    /// Apply one op at time `now_ns` — the single dispatch point of the
    /// whole API. Invalid parameters (unaligned hint ranges, out-of-range
    /// shard indices) come back as [`OpOutput::Err`], never a panic, so
    /// a corrupt or adversarial log replays safely.
    fn dispatch(&mut self, now_ns: u64, op: &Op) -> OpOutput {
        match op {
            Op::Write { offset, data } => OpOutput::from_writes(self.write_batch(&[BatchWrite {
                now_ns,
                offset: *offset,
                data,
            }])),
            Op::WriteBatch { writes } => {
                let batch: Vec<BatchWrite<'_>> = writes
                    .iter()
                    .map(|(offset, data)| BatchWrite { now_ns, offset: *offset, data })
                    .collect();
                OpOutput::from_writes(self.write_batch(&batch))
            }
            Op::Read { offset, len } => OpOutput::from_read(self.read(now_ns, *offset, *len)),
            Op::Flush => OpOutput::from_writes(self.flush_all(now_ns)),
            Op::Scrub => match self.scrub() {
                Ok(r) => OpOutput::Scrub(r),
                Err(e) => OpOutput::Err(e.to_string()),
            },
            Op::Verify => match self.verify_store() {
                Ok(r) => OpOutput::Scrub(r),
                Err(e) => OpOutput::Err(e.to_string()),
            },
            Op::Recover => match self.recover() {
                Ok(r) => OpOutput::Recovery(r),
                Err(e) => OpOutput::Err(e.to_string()),
            },
            Op::RecompressPass { target, max_rewrites } => {
                let budget = usize::try_from(*max_rewrites).unwrap_or(usize::MAX);
                match self.recompress(now_ns, *target, budget) {
                    Ok(r) => OpOutput::Recompress(r),
                    Err(e) => OpOutput::Err(e.to_string()),
                }
            }
            Op::SetHint { offset, len, hint } => {
                if !offset.is_multiple_of(crate::scheme::BLOCK_BYTES)
                    || !len.is_multiple_of(crate::scheme::BLOCK_BYTES)
                {
                    return OpOutput::Err("unaligned hint range".to_string());
                }
                self.set_hint(*offset, *len, *hint);
                OpOutput::Unit
            }
            Op::SetFaultPlan(plan) => {
                if !(0.0..=1.0).contains(&plan.read_error_rate)
                    || !(0.0..=1.0).contains(&plan.program_error_rate)
                    || !(0.0..=1.0).contains(&plan.erase_error_rate)
                    || !(0.0..=1.0).contains(&plan.bit_rot_rate)
                {
                    return OpOutput::Err("fault rate outside [0, 1]".to_string());
                }
                self.set_fault_plan(*plan);
                OpOutput::Unit
            }
            Op::TruncateJournal { shard, bytes } => {
                let shard = *shard as usize;
                if shard >= self.shard_count() {
                    return OpOutput::Err(format!("shard {shard} out of range"));
                }
                let bytes = usize::try_from(*bytes).unwrap_or(usize::MAX);
                self.truncate_journal_bytes(shard, bytes);
                OpOutput::Unit
            }
            Op::PowerCut => {
                self.cut_power();
                OpOutput::Unit
            }
            Op::Stats => OpOutput::Stats(self.stats()),
            Op::VerifyDedup => match self.verify_dedup() {
                Ok(r) => OpOutput::Dedup(r),
                Err(e) => OpOutput::Err(e.to_string()),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ops() -> Vec<Op> {
        vec![
            Op::Write { offset: 4096, data: vec![7u8; 8192] },
            Op::WriteBatch {
                writes: vec![(0, vec![1u8; 4096]), (1 << 20, vec![2u8; 4096])],
            },
            Op::Read { offset: 4096, len: 8192 },
            Op::Flush,
            Op::Scrub,
            Op::Verify,
            Op::Recover,
            Op::RecompressPass { target: CodecId::Deflate, max_rewrites: 42 },
            Op::SetHint { offset: 0, len: 4096, hint: FileTypeHint::Database },
            Op::SetFaultPlan(FaultPlan {
                seed: 5,
                bit_rot_rate: 0.25,
                ..FaultPlan::none()
            }),
            Op::TruncateJournal { shard: 3, bytes: 130 },
            Op::PowerCut,
            Op::Stats,
            Op::VerifyDedup,
        ]
    }

    #[test]
    fn every_op_round_trips() {
        for op in sample_ops() {
            let bytes = op.encode();
            assert_eq!(Op::decode(&bytes), Some(op.clone()), "round trip of {}", op.kind());
        }
    }

    #[test]
    fn decode_rejects_trailing_and_truncated_bytes() {
        for op in sample_ops() {
            let mut bytes = op.encode();
            bytes.push(0);
            assert_eq!(Op::decode(&bytes), None, "trailing byte accepted for {}", op.kind());
            bytes.pop();
            bytes.pop();
            if bytes.is_empty() {
                continue;
            }
            assert_eq!(Op::decode(&bytes), None, "truncation accepted for {}", op.kind());
        }
        assert_eq!(Op::decode(&[]), None);
        assert_eq!(Op::decode(&[0xFF]), None);
    }

    #[test]
    fn digests_separate_variants_and_fields() {
        let a = OpOutput::Unit;
        let b = OpOutput::Err(String::new());
        assert_ne!(a.digest(), b.digest(), "empty payloads must still differ by variant");
        let r1 = OpOutput::Read { len: 4096, checksum: 1 };
        let r2 = OpOutput::Read { len: 4096, checksum: 2 };
        assert_ne!(r1.digest(), r2.digest());
        assert_eq!(r1.digest(), OpOutput::Read { len: 4096, checksum: 1 }.digest());
    }

    #[test]
    fn write_result_digest_tracks_every_field() {
        let base = WriteResult {
            start_block: 1,
            blocks: 2,
            tag: CodecId::Lz4,
            payload_bytes: 100,
            allocated_bytes: 1024,
        };
        let d0 = OpOutput::Writes(vec![base.clone()]).digest();
        for variant in [
            WriteResult { start_block: 9, ..base.clone() },
            WriteResult { blocks: 3, ..base.clone() },
            WriteResult { tag: CodecId::Lzf, ..base.clone() },
            WriteResult { payload_bytes: 101, ..base.clone() },
            WriteResult { allocated_bytes: 2048, ..base },
        ] {
            assert_ne!(OpOutput::Writes(vec![variant]).digest(), d0);
        }
    }
}
