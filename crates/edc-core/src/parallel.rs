//! Multi-threaded compression engine.
//!
//! A production inline-compression appliance compresses independent merged
//! runs on several cores. [`ParallelCompressor`] does exactly that with
//! `std::thread::scope` workers over a shared atomic work index (simple
//! self-scheduling — no channels, no locks, no per-job allocation beyond
//! the output vector), preserving input order in the results. Each worker
//! owns one [`CompressorState`] for the whole batch, so codec scratch
//! (hash tables, chains, Huffman buffers) is paid once per worker, not
//! once per job. Compression is pure and state reuse is stream-stable, so
//! the parallel results are bit-identical to the serial ones.

use edc_compress::{CodecId, CodecRegistry, CompressorState, DecompressError};
use std::sync::atomic::{AtomicUsize, Ordering};

/// One compression job: a codec and an input block.
#[derive(Debug, Clone, Copy)]
pub struct Job<'a> {
    /// Codec to apply (`CodecId::None` copies the input).
    pub codec: CodecId,
    /// Input bytes.
    pub data: &'a [u8],
}

/// A fixed-width parallel compression engine.
///
/// ```
/// use edc_core::parallel::{ParallelCompressor, Job};
/// use edc_compress::CodecId;
///
/// let blocks: Vec<Vec<u8>> = (0..8).map(|i| vec![i as u8; 4096]).collect();
/// let jobs: Vec<Job<'_>> =
///     blocks.iter().map(|d| Job { codec: CodecId::Lzf, data: d }).collect();
/// let out = ParallelCompressor::new(4).compress_batch(&jobs);
/// assert_eq!(out.len(), 8); // results in job order, bit-identical to serial
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ParallelCompressor {
    workers: usize,
}

impl ParallelCompressor {
    /// Create an engine with `workers` threads (≥ 1).
    pub fn new(workers: usize) -> Self {
        assert!(workers >= 1, "need at least one worker");
        ParallelCompressor { workers }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Compress all jobs; results are in job order.
    pub fn compress_batch(&self, jobs: &[Job<'_>]) -> Vec<Vec<u8>> {
        self.run_indexed(jobs, |state, _i, codec, data| match CodecRegistry::get(codec) {
            // Write-through: no codec, copy the input.
            Err(_) => data.to_vec(),
            Ok(c) => {
                let mut out = Vec::new();
                c.compress_with(state, data, &mut out);
                out
            }
        })
    }

    /// Decompress all `(codec, stream, original_len)` tuples, in order.
    pub fn decompress_batch(
        &self,
        jobs: &[(CodecId, &[u8], usize)],
    ) -> Vec<Result<Vec<u8>, DecompressError>> {
        let wrapped: Vec<Job<'_>> =
            jobs.iter().map(|&(codec, data, _)| Job { codec, data }).collect();
        let lens: Vec<usize> = jobs.iter().map(|&(_, _, n)| n).collect();
        // Reuse the generic runner; thread the expected length through by
        // index (jobs are processed by index, so pairing is exact).
        self.run_indexed(&wrapped, |_state, i, codec, data| match CodecRegistry::get(codec) {
            Err(_) => Ok(data.to_vec()),
            Ok(c) => c.decompress(data, lens[i]),
        })
    }

    /// Self-scheduling parallel map preserving job order: workers claim
    /// indices from a shared atomic counter, accumulate `(index, value)`
    /// pairs privately, and the results are scattered into place after the
    /// joins — no per-job lock traffic on the hot path. Each worker owns
    /// one [`CompressorState`] for the whole batch.
    fn run_indexed<T, F>(&self, jobs: &[Job<'_>], f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut CompressorState, usize, CodecId, &[u8]) -> T + Sync,
    {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        let threads = self.workers.min(n);
        if threads == 1 {
            let mut state = CompressorState::new();
            return jobs
                .iter()
                .enumerate()
                .map(|(i, j)| f(&mut state, i, j.codec, j.data))
                .collect();
        }
        let next = AtomicUsize::new(0);
        let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    s.spawn(|| {
                        let mut state = CompressorState::new();
                        let mut done: Vec<(usize, T)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            done.push((i, f(&mut state, i, jobs[i].codec, jobs[i].data)));
                        }
                        done
                    })
                })
                .collect();
            for h in handles {
                for (i, v) in h.join().expect("worker panicked") {
                    results[i] = Some(v);
                }
            }
        });
        results.into_iter().map(|v| v.expect("every index claimed")).collect()
    }
}

impl Default for ParallelCompressor {
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map_or(2, |n| n.get());
        ParallelCompressor::new(cores.clamp(1, 8))
    }
}

/// Scoped parallel map over indices `0..n`, preserving index order in the
/// results. Same self-scheduling shape as the compression engine (shared
/// atomic work counter, private accumulation, scatter after join), but
/// generic over the closure — [`crate::shard::ShardedPipeline`] uses it to
/// fan maintenance operations (`flush_all`, `recover`, `scrub`, `verify`)
/// across shards, each closure locking its own shard.
///
/// `n == 0` returns an empty vector; `workers` is clamped to `[1, n]`.
pub fn par_map_indexed<T, F>(n: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let threads = workers.clamp(1, n);
    if threads == 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut done: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        done.push((i, f(i)));
                    }
                    done
                })
            })
            .collect();
        for h in handles {
            for (i, v) in h.join().expect("worker panicked") {
                results[i] = Some(v);
            }
        }
    });
    results.into_iter().map(|v| v.expect("every index claimed")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocks(n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| {
                format!("parallel compression block {i} content content content ")
                    .into_bytes()
                    .into_iter()
                    .cycle()
                    .take(4096 + i * 13)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn parallel_matches_serial() {
        let data = blocks(37);
        let jobs: Vec<Job<'_>> =
            data.iter().map(|d| Job { codec: CodecId::Deflate, data: d }).collect();
        let serial = ParallelCompressor::new(1).compress_batch(&jobs);
        let parallel = ParallelCompressor::new(4).compress_batch(&jobs);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn order_is_preserved() {
        let data = blocks(16);
        let jobs: Vec<Job<'_>> = data.iter().map(|d| Job { codec: CodecId::Lzf, data: d }).collect();
        let out = ParallelCompressor::new(4).compress_batch(&jobs);
        for (i, (result, original)) in out.iter().zip(&data).enumerate() {
            let codec = CodecRegistry::get(CodecId::Lzf).unwrap();
            assert_eq!(
                &codec.decompress(result, original.len()).unwrap(),
                original,
                "job {i} out of order"
            );
        }
    }

    #[test]
    fn mixed_codecs_in_one_batch() {
        let data = blocks(8);
        let codecs = [CodecId::Lzf, CodecId::Lz4, CodecId::Deflate, CodecId::Bwt];
        let jobs: Vec<Job<'_>> = data
            .iter()
            .enumerate()
            .map(|(i, d)| Job { codec: codecs[i % 4], data: d })
            .collect();
        let out = ParallelCompressor::new(3).compress_batch(&jobs);
        for (i, (stream, original)) in out.iter().zip(&data).enumerate() {
            let codec = CodecRegistry::get(codecs[i % 4]).unwrap();
            assert_eq!(&codec.decompress(stream, original.len()).unwrap(), original);
        }
    }

    #[test]
    fn none_codec_copies() {
        let data = blocks(3);
        let jobs: Vec<Job<'_>> = data.iter().map(|d| Job { codec: CodecId::None, data: d }).collect();
        let out = ParallelCompressor::new(2).compress_batch(&jobs);
        assert_eq!(out, data);
    }

    #[test]
    fn empty_batch() {
        let out = ParallelCompressor::new(4).compress_batch(&[]);
        assert!(out.is_empty());
    }

    #[test]
    fn decompress_batch_round_trips() {
        let data = blocks(12);
        let jobs: Vec<Job<'_>> =
            data.iter().map(|d| Job { codec: CodecId::Deflate, data: d }).collect();
        let streams = ParallelCompressor::new(4).compress_batch(&jobs);
        let dec_jobs: Vec<(CodecId, &[u8], usize)> = streams
            .iter()
            .zip(&data)
            .map(|(s, d)| (CodecId::Deflate, s.as_slice(), d.len()))
            .collect();
        let out = ParallelCompressor::new(4).decompress_batch(&dec_jobs);
        for (r, d) in out.into_iter().zip(&data) {
            assert_eq!(&r.unwrap(), d);
        }
    }

    #[test]
    fn decompress_batch_surfaces_errors() {
        let garbage = vec![0xFFu8; 64];
        let jobs = [(CodecId::Deflate, garbage.as_slice(), 4096)];
        let out = ParallelCompressor::new(2).decompress_batch(&jobs);
        assert!(out[0].is_err());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = ParallelCompressor::new(0);
    }

    #[test]
    fn par_map_indexed_preserves_order() {
        for workers in [1, 2, 5] {
            let out = par_map_indexed(23, workers, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>());
        }
        assert!(par_map_indexed(0, 4, |i| i).is_empty());
    }

    #[test]
    fn more_workers_than_jobs() {
        let data = blocks(2);
        let jobs: Vec<Job<'_>> = data.iter().map(|d| Job { codec: CodecId::Lzf, data: d }).collect();
        let out = ParallelCompressor::new(16).compress_batch(&jobs);
        assert_eq!(out.len(), 2);
    }
}
