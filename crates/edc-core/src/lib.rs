//! # edc-core
//!
//! Elastic Data Compression (EDC) — the primary contribution of Mao et
//! al., *"Elastic Data Compression with Improved Performance and Space
//! Efficiency for Flash-based Storage Systems"* (IPDPS 2017) — plus the
//! Native and fixed-compression baselines it is evaluated against.
//!
//! EDC is a block-device-level compression layer that matches data of
//! different compressibility with different compression algorithms while
//! leveraging access idleness:
//!
//! * a [`monitor::WorkloadMonitor`] measures I/O intensity
//!   as *calculated IOPS* (4 KiB page-units per second),
//! * an [`selector::AlgorithmSelector`] maps intensity
//!   to a codec through a threshold ladder — strong codecs when idle, fast
//!   codecs when busy, none during bursts,
//! * a sampling compressibility check writes incompressible blocks through
//!   uncompressed (the 75 % rule),
//! * a [`sd::SequentialityDetector`] merges
//!   contiguous writes so larger units are compressed (paper Fig. 7),
//! * a [`allocator::QuantizedAllocator`] places
//!   compressed data in 25/50/75/100 % quanta (paper Fig. 5) backed by a
//!   segregated-fit [`slots::SlotStore`],
//! * a sharded [`mapping::BlockMap`] tracks per-block LBA, size
//!   and the 3-bit codec tag.
//!
//! Two front-ends expose the pipeline:
//!
//! * [`pipeline::EdcPipeline`] — the real-bytes engine: give it actual
//!   block writes and it estimates, merges, compresses (with the
//!   from-scratch codecs in `edc-compress`) and hands back compressed
//!   segments plus mapping updates. [`parallel::ParallelCompressor`] runs
//!   the compression stage across threads.
//! * [`scheme::SimScheme`] — the trace-replay engine used for the paper's
//!   experiments, where content compressibility comes from a calibrated
//!   [`content::ContentModel`] and CPU cost from the
//!   deterministic cost model, so multi-hour traces replay in seconds.
//!
//! Concurrent clients stripe over N pipelines through
//! [`shard::ShardedPipeline`], and [`ring::Ring`] adds an asynchronous
//! submission/completion-queue front-end on top of it — fixed-depth
//! per-shard rings with typed backpressure, so queue depth rather than
//! caller thread count drives device saturation.
//!
//! Every pipeline entry point is fallible, funnelling into the unified
//! [`error::EdcError`]. Arm a seeded `edc_flash::FaultPlan` and the store
//! injects read faults, bit rot and power cuts; committed runs are
//! journaled ([`journal::MappingJournal`]) so
//! [`pipeline::EdcPipeline::recover`] rebuilds the mapping table after a
//! crash with zero data loss for journaled runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allocator;
pub mod cache;
pub mod clock;
pub mod content;
pub mod dedup;
pub mod error;
pub mod feedback;
pub mod heat;
pub mod hints;
pub mod journal;
pub mod mapping;
pub mod monitor;
pub mod parallel;
pub mod pipeline;
pub mod record;
pub mod ring;
pub mod scheme;
pub mod sd;
pub mod selector;
pub mod shard;
pub mod slots;
pub mod store;
pub mod telemetry;

pub use allocator::{AllocPolicy, AllocStats, QuantizedAllocator};
pub use cache::{CacheStats, RunCache};
pub use clock::{Clock, ManualClock, WallClock};
pub use content::{CalibrationConfig, ContentModel};
pub use dedup::{content_hash64, DedupConfig, DedupIndex, DedupReport};
pub use error::{EdcError, WriteError};
pub use feedback::{FeedbackConfig, FeedbackSelector};
pub use heat::{HeatConfig, HeatTracker, Temperature};
pub use hints::{FileTypeHint, HintRegistry};
pub use journal::{MappingJournal, RecoveryError, Replay};
pub use mapping::{BlockMap, MappingEntry};
pub use monitor::WorkloadMonitor;
pub use parallel::ParallelCompressor;
pub use pipeline::{
    EdcPipeline, PipelineConfig, PipelineStats, ReadError, RecompressReport, RecoveryReport,
    ScrubReport, WriteResult,
};
pub use record::{
    parse as parse_edcrr, Divergence, LogRecord, ParsedLog, Recorder, ReplayRefusal,
    ReplayReport, Replayer, StoreSpec,
};
pub use ring::{Ring, RingConfig, RingError, RingStats, Ticket};
pub use scheme::{CodecUsage, EdcConfig, Policy, SimConfig, SimScheme, BLOCK_BYTES};
pub use sd::{MergedRun, SdConfig, SequentialityDetector};
pub use selector::{codec_strength, AlgorithmSelector, LadderRung, SelectorConfig};
pub use shard::{ShardConfig, ShardedPipeline};
pub use slots::SlotStore;
pub use store::{Op, OpOutput, Store};
pub use telemetry::{Sample, TieredSeries};
