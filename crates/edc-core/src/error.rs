//! The unified fallible API surface of `edc-core`.
//!
//! Every failure the pipeline can produce — read-path corruption, write-
//! path faults, journal-recovery problems, raw flash faults — funnels into
//! one [`EdcError`] so callers match on a single type, while the
//! constituent error enums stay available for precise handling. Nothing on
//! these paths panics: a fault is data, not an abort.

use crate::journal::RecoveryError;
use crate::pipeline::ReadError;
use core::fmt;
use edc_compress::CodecError;
use edc_flash::{ArrayError, FaultError};

/// Errors from the pipeline's write side ([`crate::pipeline::EdcPipeline::write`],
/// `write_batch`, `flush`, `flush_all`).
#[derive(Debug)]
pub enum WriteError {
    /// Offset or length not 4 KiB-aligned / not whole blocks.
    Unaligned,
    /// The store is powered off after a simulated power cut; call
    /// [`crate::pipeline::EdcPipeline::recover`] first.
    Offline,
    /// A simulated power cut fired mid-flush. Runs whose journal record
    /// was durable before the cut survive recovery; the run being stored
    /// at the instant of the cut does not.
    PowerCut {
        /// Page programs completed before the lights went out.
        after_programs: u64,
    },
    /// A codec lookup failed (a run sealed with an impossible tag).
    Codec(CodecError),
}

impl fmt::Display for WriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WriteError::Unaligned => write!(f, "write must be whole 4 KiB-aligned blocks"),
            WriteError::Offline => {
                write!(f, "store is powered off after a power cut; recover() first")
            }
            WriteError::PowerCut { after_programs } => {
                write!(f, "power cut after {after_programs} page programs")
            }
            WriteError::Codec(e) => write!(f, "codec lookup failed: {e}"),
        }
    }
}

impl std::error::Error for WriteError {}

/// The unified `edc-core` error: everything the pipeline's fallible API
/// can return, with `From` impls so `?` composes across layers.
#[derive(Debug)]
pub enum EdcError {
    /// Read-path failure (corruption, checksum mismatch, unrecoverable
    /// read fault, powered-off store).
    Read(ReadError),
    /// Write-path failure (alignment, power cut, powered-off store).
    Write(WriteError),
    /// Journal-replay failure during [`crate::pipeline::EdcPipeline::recover`].
    Recovery(RecoveryError),
    /// A flash-level fault surfaced directly (device campaigns driving
    /// `edc-flash` through the pipeline's error type).
    Fault(FaultError),
    /// An integrity audit found live metadata structures out of sync
    /// (e.g. the dedup refcount ledger disagreeing with the mapping
    /// table). Always a logic-level inconsistency, never media damage.
    Integrity(&'static str),
    /// A RAIS array-level failure (shape error, degraded-path loss,
    /// member fault) surfaced through the pipeline's error type.
    Array(ArrayError),
}

impl fmt::Display for EdcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdcError::Read(e) => write!(f, "read failed: {e}"),
            EdcError::Write(e) => write!(f, "write failed: {e}"),
            EdcError::Recovery(e) => write!(f, "recovery failed: {e}"),
            EdcError::Fault(e) => write!(f, "flash fault: {e}"),
            EdcError::Integrity(msg) => write!(f, "integrity audit failed: {msg}"),
            EdcError::Array(e) => write!(f, "array error: {e}"),
        }
    }
}

impl std::error::Error for EdcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EdcError::Read(e) => Some(e),
            EdcError::Write(e) => Some(e),
            EdcError::Recovery(e) => Some(e),
            EdcError::Fault(e) => Some(e),
            EdcError::Integrity(_) => None,
            EdcError::Array(e) => Some(e),
        }
    }
}

impl From<ReadError> for EdcError {
    fn from(e: ReadError) -> Self {
        EdcError::Read(e)
    }
}

impl From<WriteError> for EdcError {
    fn from(e: WriteError) -> Self {
        EdcError::Write(e)
    }
}

impl From<RecoveryError> for EdcError {
    fn from(e: RecoveryError) -> Self {
        EdcError::Recovery(e)
    }
}

impl From<FaultError> for EdcError {
    fn from(e: FaultError) -> Self {
        EdcError::Fault(e)
    }
}

impl From<ArrayError> for EdcError {
    fn from(e: ArrayError) -> Self {
        EdcError::Array(e)
    }
}

impl From<CodecError> for EdcError {
    fn from(e: CodecError) -> Self {
        EdcError::Write(WriteError::Codec(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_impls_compose_with_question_mark() {
        fn read() -> Result<(), EdcError> {
            Err(ReadError::Unaligned)?
        }
        fn write() -> Result<(), EdcError> {
            Err(WriteError::Offline)?
        }
        fn fault() -> Result<(), EdcError> {
            Err(FaultError::ReadFault)?
        }
        fn codec() -> Result<(), EdcError> {
            Err(CodecError::WriteThrough)?
        }
        fn array() -> Result<(), EdcError> {
            Err(ArrayError::EmptyChunk)?
        }
        assert!(matches!(read(), Err(EdcError::Read(_))));
        assert!(matches!(write(), Err(EdcError::Write(_))));
        assert!(matches!(fault(), Err(EdcError::Fault(_))));
        assert!(matches!(codec(), Err(EdcError::Write(WriteError::Codec(_)))));
        assert!(matches!(array(), Err(EdcError::Array(ArrayError::EmptyChunk))));
    }

    #[test]
    fn displays_are_informative() {
        let e = EdcError::Write(WriteError::PowerCut { after_programs: 42 });
        assert!(e.to_string().contains("42"));
        assert!(EdcError::Write(WriteError::Unaligned).to_string().contains("4 KiB"));
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
