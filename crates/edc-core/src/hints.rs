//! File-type semantic hints — the paper's §VI future work #1:
//! "the file type information can be incorporated into the EDC design, so
//! that different compression algorithms are responsible for different
//! data content in different file types."
//!
//! An upper layer (file system, object store) that knows what lives in a
//! block range can register a [`FileTypeHint`] for it. Hints *constrain*
//! the intensity ladder rather than replace it: a hint can force
//! write-through (already-compressed media), cap the codec strength
//! (latency-sensitive database pages), or leave the elastic choice alone —
//! so the burst-protection semantics of the ladder are preserved.

use edc_compress::CodecId;
use std::collections::BTreeMap;

/// Semantic content type of a block range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FileTypeHint {
    /// Already-compressed content (JPEG/MP4/ZIP/...): never compress —
    /// skips even the sampling estimate.
    Precompressed,
    /// Natural text / source code: highly compressible; the elastic choice
    /// stands (strong codecs pay off whenever the ladder allows them).
    Text,
    /// Database/index pages: latency-sensitive; cap the codec at the fast
    /// tier even when the system is idle.
    Database,
    /// Virtual-machine or container images: mixed content, elastic choice
    /// stands.
    VmImage,
}

/// Codec "strength" for capping (None < fast LZ < Deflate < BWT).
fn strength(id: CodecId) -> u8 {
    match id {
        CodecId::None => 0,
        CodecId::Lzf | CodecId::Lz4 => 1,
        CodecId::Deflate => 2,
        CodecId::Bwt => 3,
    }
}

impl FileTypeHint {
    /// Guess a hint from a file extension (how a filesystem integration
    /// would populate the registry).
    pub fn from_extension(ext: &str) -> Option<FileTypeHint> {
        match ext.to_ascii_lowercase().as_str() {
            "jpg" | "jpeg" | "png" | "gif" | "mp4" | "mkv" | "avi" | "mp3" | "aac" | "zip"
            | "gz" | "bz2" | "xz" | "zst" | "7z" | "rar" | "tif" | "tiff" => {
                Some(FileTypeHint::Precompressed)
            }
            "txt" | "log" | "c" | "h" | "rs" | "py" | "js" | "html" | "css" | "xml" | "json"
            | "csv" | "md" => Some(FileTypeHint::Text),
            "db" | "ibd" | "myd" | "frm" | "sqlite" | "mdf" | "ldf" | "dbf" => {
                Some(FileTypeHint::Database)
            }
            "vmdk" | "qcow2" | "vhd" | "vdi" | "img" | "iso" => Some(FileTypeHint::VmImage),
            _ => None,
        }
    }

    /// Apply the hint to the ladder's elastic choice.
    pub fn constrain(self, elastic_choice: CodecId) -> CodecId {
        match self {
            FileTypeHint::Precompressed => CodecId::None,
            FileTypeHint::Database => {
                if strength(elastic_choice) > strength(CodecId::Lzf) {
                    CodecId::Lzf
                } else {
                    elastic_choice
                }
            }
            FileTypeHint::Text | FileTypeHint::VmImage => elastic_choice,
        }
    }

    /// Whether the sampling estimate can be skipped entirely (the hint
    /// already settles the compress/skip question).
    pub fn settles_compressibility(self) -> bool {
        matches!(self, FileTypeHint::Precompressed)
    }
}

/// Block-range → hint registry (an interval map over 4 KiB block numbers).
/// Later registrations override earlier ones where they overlap.
#[derive(Debug, Clone, Default)]
pub struct HintRegistry {
    /// start_block → (end_block_exclusive, hint), non-overlapping.
    ranges: BTreeMap<u64, (u64, FileTypeHint)>,
}

impl HintRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `hint` for blocks `[start, start + blocks)`.
    pub fn set(&mut self, start: u64, blocks: u64, hint: FileTypeHint) {
        assert!(blocks > 0, "empty hint range");
        let end = start + blocks;
        // Split/trim any existing ranges overlapping [start, end).
        let overlapping: Vec<(u64, (u64, FileTypeHint))> = self
            .ranges
            .range(..end)
            .filter(|&(&s, &(e, _))| e > start && s < end)
            .map(|(&s, &v)| (s, v))
            .collect();
        for (s, (e, h)) in overlapping {
            self.ranges.remove(&s);
            if s < start {
                self.ranges.insert(s, (start, h));
            }
            if e > end {
                self.ranges.insert(end, (e, h));
            }
        }
        self.ranges.insert(start, (end, hint));
    }

    /// Look up the hint covering `block`, if any.
    pub fn lookup(&self, block: u64) -> Option<FileTypeHint> {
        self.ranges
            .range(..=block)
            .next_back()
            .filter(|&(_, &(end, _))| block < end)
            .map(|(_, &(_, hint))| hint)
    }

    /// Number of registered ranges.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extension_classification() {
        assert_eq!(FileTypeHint::from_extension("JPG"), Some(FileTypeHint::Precompressed));
        assert_eq!(FileTypeHint::from_extension("rs"), Some(FileTypeHint::Text));
        assert_eq!(FileTypeHint::from_extension("sqlite"), Some(FileTypeHint::Database));
        assert_eq!(FileTypeHint::from_extension("qcow2"), Some(FileTypeHint::VmImage));
        assert_eq!(FileTypeHint::from_extension("weird"), None);
    }

    #[test]
    fn precompressed_forces_write_through() {
        for choice in [CodecId::Lzf, CodecId::Deflate, CodecId::Bwt, CodecId::None] {
            assert_eq!(FileTypeHint::Precompressed.constrain(choice), CodecId::None);
        }
        assert!(FileTypeHint::Precompressed.settles_compressibility());
    }

    #[test]
    fn database_caps_at_fast_tier() {
        assert_eq!(FileTypeHint::Database.constrain(CodecId::Bwt), CodecId::Lzf);
        assert_eq!(FileTypeHint::Database.constrain(CodecId::Deflate), CodecId::Lzf);
        assert_eq!(FileTypeHint::Database.constrain(CodecId::Lzf), CodecId::Lzf);
        // Burst protection preserved: the cap never *enables* compression.
        assert_eq!(FileTypeHint::Database.constrain(CodecId::None), CodecId::None);
    }

    #[test]
    fn text_leaves_elastic_choice() {
        for choice in [CodecId::None, CodecId::Lzf, CodecId::Deflate, CodecId::Bwt] {
            assert_eq!(FileTypeHint::Text.constrain(choice), choice);
        }
    }

    #[test]
    fn registry_lookup_basic() {
        let mut r = HintRegistry::new();
        r.set(100, 50, FileTypeHint::Text);
        assert_eq!(r.lookup(99), None);
        assert_eq!(r.lookup(100), Some(FileTypeHint::Text));
        assert_eq!(r.lookup(149), Some(FileTypeHint::Text));
        assert_eq!(r.lookup(150), None);
    }

    #[test]
    fn later_registration_overrides_overlap() {
        let mut r = HintRegistry::new();
        r.set(0, 100, FileTypeHint::Text);
        r.set(40, 20, FileTypeHint::Precompressed);
        assert_eq!(r.lookup(10), Some(FileTypeHint::Text));
        assert_eq!(r.lookup(45), Some(FileTypeHint::Precompressed));
        assert_eq!(r.lookup(70), Some(FileTypeHint::Text), "tail of split range survives");
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn override_swallows_contained_ranges() {
        let mut r = HintRegistry::new();
        r.set(10, 5, FileTypeHint::Database);
        r.set(20, 5, FileTypeHint::Text);
        r.set(0, 100, FileTypeHint::VmImage);
        for b in [0, 12, 22, 99] {
            assert_eq!(r.lookup(b), Some(FileTypeHint::VmImage), "block {b}");
        }
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn adjacent_ranges_do_not_interfere() {
        let mut r = HintRegistry::new();
        r.set(0, 10, FileTypeHint::Text);
        r.set(10, 10, FileTypeHint::Database);
        assert_eq!(r.lookup(9), Some(FileTypeHint::Text));
        assert_eq!(r.lookup(10), Some(FileTypeHint::Database));
    }

    #[test]
    #[should_panic(expected = "empty hint range")]
    fn empty_range_rejected() {
        HintRegistry::new().set(0, 0, FileTypeHint::Text);
    }
}
