//! # edc — Elastic Data Compression for flash-based storage
//!
//! A from-scratch Rust reproduction of Mao, Jiang, Wu, Yang & Xi,
//! *"Elastic Data Compression with Improved Performance and Space
//! Efficiency for Flash-based Storage Systems"* (IPDPS 2017).
//!
//! EDC is a block-device-level compression layer that picks its
//! compression algorithm *elastically*: strong, slow codecs while the
//! system is idle; fast, weak codecs while it is busy; no compression at
//! all for bursts and for incompressible data. This workspace implements
//! the complete system and every substrate it needs:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`compress`] | Lzf-, Lz4-, Gzip(DEFLATE)- and Bzip2(BWT)-class codecs written from scratch, the sampling compressibility estimator, and the deterministic cost model |
//! | [`datagen`] | SDGen-equivalent synthetic content with controllable compressibility |
//! | [`trace`] | SPC/MSR trace parsers, synthetic bursty workload generators, workload statistics |
//! | [`flash`] | NAND SSD simulator: page-mapped FTL, garbage collection, wear, RAIS arrays |
//! | [`sim`] | discrete-event replay engine: event queue, CPU pool, latency accounting |
//! | [`core`] | EDC itself — monitor, selector, sequentiality detector, quantized allocator, mapping table — plus the Native/fixed baselines, a real-bytes [`EdcPipeline`](core::pipeline::EdcPipeline), a parallel compression engine, the concurrent [`ShardedPipeline`](core::shard::ShardedPipeline) front-end, and the asynchronous [`Ring`](core::ring::Ring) submission/completion front-end |
//!
//! ## Quickstart
//!
//! ```
//! use edc::prelude::*;
//!
//! fn main() -> Result<(), EdcError> {
//!     // A 1 MiB EDC-compressed block store.
//!     let mut store = EdcPipeline::new(1 << 20, PipelineConfig::default());
//!     let block = vec![b'a'; 4096];
//!     store.write(0, 0, &block)?;          // buffered by the Sequentiality Detector
//!     store.flush(1_000)?;                 // compress + place
//!     assert_eq!(store.read(2_000, 0, 4096)?, block);
//!     assert!(store.stats().compression_ratio() > 1.0);
//!     Ok(())
//! }
//! ```
//!
//! Every entry point is fallible: failures — including injected flash
//! faults and simulated power cuts (see [`prelude::FaultPlan`]) — come
//! back as typed [`prelude::EdcError`] values, and
//! [`EdcPipeline::recover`](core::pipeline::EdcPipeline::recover) replays
//! the mapping journal after a crash.
//!
//! See `examples/` for runnable scenarios and `crates/edc-bench` for the
//! harness that regenerates every figure and table of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use edc_compress as compress;
pub use edc_core as core;
pub use edc_datagen as datagen;
pub use edc_flash as flash;
pub use edc_sim as sim;
pub use edc_trace as trace;

/// The one-line import for typical users: the pipeline, its
/// configuration, the unified error, codec identifiers, fault plans, the
/// device configuration, and the op-dispatch / record-replay surface
/// ([`Op`](edc_core::store::Op), [`Store`](edc_core::store::Store),
/// [`Recorder`](edc_core::record::Recorder)).
///
/// ```
/// use edc::prelude::*;
///
/// let mut store = EdcPipeline::new(1 << 20, PipelineConfig::default());
/// assert!(store.read(0, 0, 4096).is_ok());
/// ```
pub mod prelude {
    pub use edc_compress::CodecId;
    pub use edc_core::error::EdcError;
    pub use edc_core::pipeline::{
        BatchWrite, EdcPipeline, PipelineConfig, PipelineStats, ReadError, RecoveryReport,
        WriteResult,
    };
    pub use edc_core::ring::{Ring, RingConfig, RingError, RingStats, Ticket};
    pub use edc_core::shard::{ShardConfig, ShardedPipeline};
    pub use edc_core::{
        Clock, ManualClock, Op, OpOutput, Recorder, ReplayRefusal, ReplayReport, Replayer,
        Store, StoreSpec, TieredSeries, WallClock,
    };
    pub use edc_flash::{FaultPlan, SsdConfig};
}
