//! Quickstart: an EDC-compressed block store on real bytes.
//!
//! Writes a few kinds of content through the full EDC pipeline (monitor →
//! sequentiality detector → compressibility estimate → elastic codec
//! selection → quantized allocation), reads everything back, and prints
//! what the engine decided per run.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use edc::datagen::{ContentGenerator, DataMix};
use edc::prelude::*;

fn main() -> Result<(), EdcError> {
    // A 16 MiB device image with the paper-default configuration.
    let mut store = EdcPipeline::new(16 << 20, PipelineConfig::default());
    let mut generator = ContentGenerator::new(7, DataMix::primary_storage());

    println!("writing 64 blocks of mixed content through EDC...\n");
    println!("{:>9} {:>7} {:>8} {:>12} {:>12}", "run_start", "blocks", "codec", "payload_B", "alloc_B");

    // Slow writes (1 per 50 ms): the workload monitor reads ~20 calculated
    // IOPS, so the ladder picks the *strong* codec for compressible runs.
    let mut originals = Vec::new();
    let mut t_ns: u64 = 0;
    for i in 0..64u64 {
        let (_, data) = generator.block(4096);
        originals.push((i, data.clone()));
        let flushed = store.write(t_ns, i * 4096, &data)?;
        report(flushed);
        t_ns += 50_000_000;
    }
    report(store.flush(t_ns)?);

    // Read everything back and verify.
    for (i, data) in &originals {
        let got = store.read(t_ns, i * 4096, 4096)?;
        assert_eq!(&got, data, "block {i} corrupted");
    }
    println!("\nall 64 blocks verified byte-identical after decompression");
    println!(
        "logical written: {} KiB, physical written: {} KiB, compression ratio: {:.2}",
        store.stats().logical_written / 1024,
        store.stats().physical_written / 1024,
        store.stats().compression_ratio()
    );
    let stats = store.alloc_stats();
    println!(
        "allocator: {} placements, {} written through (75% rule), {} B internal fragmentation",
        stats.placements, stats.write_through, stats.internal_frag_bytes
    );
    Ok(())
}

fn report(result: Option<WriteResult>) {
    if let Some(r) = result {
        let codec = match r.tag {
            CodecId::None => "store",
            other => other.name(),
        };
        println!(
            "{:>9} {:>7} {:>8} {:>12} {:>12}",
            r.start_block, r.blocks, codec, r.payload_bytes, r.allocated_bytes
        );
    }
}
