//! Compressibility explorer: the paper's §II-B measurement, interactive.
//!
//! Generates every content class `edc-datagen` produces, runs all four
//! from-scratch codecs plus the sampling estimator over each, and prints
//! ratio/speed/estimate side by side — the trade-off matrix that motivates
//! elastic selection (paper Fig. 2), reproduced on your machine in a few
//! seconds.
//!
//! ```text
//! cargo run --release --example compressibility_explorer
//! ```

use edc::compress::{CodecRegistry, Estimator};
use edc::datagen::{BlockClass, ContentGenerator, DataMix};
use edc::prelude::*;
use std::time::Instant;

const BLOCK: usize = 64 * 1024;
const BLOCKS_PER_CLASS: usize = 16;

fn main() {
    let mut generator = ContentGenerator::new(1234, DataMix::primary_storage());
    let estimator = Estimator::default();

    println!("per-class compression efficiency, {BLOCKS_PER_CLASS} x {BLOCK} B blocks\n");
    println!(
        "{:>10} {:>8} {:>9} {:>13} {:>13} {:>10}",
        "class", "codec", "ratio", "comp_MB/s", "decomp_MB/s", "estimate"
    );

    for class in BlockClass::ALL {
        let blocks: Vec<Vec<u8>> =
            (0..BLOCKS_PER_CLASS).map(|_| generator.block_of(class, BLOCK)).collect();
        let total: usize = blocks.iter().map(Vec::len).sum();
        // What EDC's cheap sampling estimator thinks of this class.
        let est: f64 = blocks.iter().map(|b| estimator.estimate(b).fraction).sum::<f64>()
            / blocks.len() as f64;
        for id in CodecId::ALL_CODECS {
            let codec = CodecRegistry::get(id).expect("real codec");
            let t0 = Instant::now();
            let streams: Vec<Vec<u8>> = blocks.iter().map(|b| codec.compress(b)).collect();
            let comp_s = t0.elapsed().as_secs_f64();
            let comp_total: usize = streams.iter().map(Vec::len).sum();
            let t0 = Instant::now();
            for (s, b) in streams.iter().zip(&blocks) {
                let out = codec.decompress(s, b.len()).expect("round trip");
                std::hint::black_box(&out);
            }
            let dec_s = t0.elapsed().as_secs_f64();
            println!(
                "{:>10} {:>8} {:>9.3} {:>13.1} {:>13.1} {:>10.3}",
                format!("{class:?}"),
                id.name(),
                total as f64 / comp_total as f64,
                total as f64 / 1e6 / comp_s,
                total as f64 / 1e6 / dec_s,
                est,
            );
        }
        println!();
    }
    println!(
        "estimate > 0.75 means EDC writes the block through uncompressed\n\
         (the paper's write-through rule; note Media/Random land above it)"
    );
}
