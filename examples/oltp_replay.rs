//! OLTP trace replay: the paper's headline experiment in miniature.
//!
//! Replays a synthetic Fin1-like OLTP workload (bursty, write-dominated —
//! the scenario the paper's introduction motivates) against all five
//! schemes on one simulated SSD and prints the space/performance trade-off
//! each achieves, plus the FTL-level effects (GC, write amplification,
//! erases) that drive flash endurance.
//!
//! ```text
//! cargo run --release --example oltp_replay
//! ```

use edc::core::{CalibrationConfig, ContentModel, EdcConfig, Policy, SimConfig, SimScheme};
use edc::datagen::DataMix;
use edc::prelude::*;
use edc::sim::replay::replay;
use edc::sim::Storage;
use edc::trace::TracePreset;
use std::sync::Arc;

fn main() {
    println!("generating a 60 s Fin1-like OLTP trace...");
    let trace = TracePreset::Fin1.generate(60.0, 42);
    println!("  {} requests, {:.1} MiB moved\n", trace.requests.len(), trace.total_bytes() as f64 / (1 << 20) as f64);

    println!("calibrating the content model on real codecs...");
    let content = Arc::new(ContentModel::calibrate(
        DataMix::oltp(),
        42,
        CalibrationConfig::default(),
    ));

    // Small enough that the 60 s write stream wraps the device and FTL
    // garbage collection becomes visible in the WAF/erase columns.
    let ssd = SsdConfig { logical_bytes: 96 << 20, ..SsdConfig::default() };
    let sim = SimConfig { cpu_workers: 1, ..SimConfig::default() };

    let policies: [(&str, Policy); 5] = [
        ("Native", Policy::Native),
        ("Lzf", Policy::Fixed(CodecId::Lzf)),
        ("Gzip", Policy::Fixed(CodecId::Deflate)),
        ("Bzip2", Policy::Fixed(CodecId::Bwt)),
        ("EDC", Policy::Elastic(EdcConfig::default())),
    ];

    println!(
        "\n{:>8} {:>10} {:>12} {:>12} {:>8} {:>8} {:>10}",
        "scheme", "ratio", "resp_ms", "p99_ms", "WAF", "erases", "composite"
    );
    let mut native_ms = 0.0f64;
    for (name, policy) in policies {
        let mut scheme =
            SimScheme::new(policy, Storage::single(ssd), sim.clone(), content.clone());
        let report = replay(&trace, &mut scheme);
        if name == "Native" {
            native_ms = report.mean_response_ms();
        }
        println!(
            "{:>8} {:>10.3} {:>12.3} {:>12.3} {:>8.2} {:>8} {:>10.3}",
            name,
            report.space.compression_ratio(),
            report.mean_response_ms(),
            report.overall.p99_ns as f64 / 1e6,
            report.ftl.write_amplification(),
            report.ftl.erases,
            report.composite(),
        );
    }
    println!(
        "\n(native mean response: {native_ms:.3} ms; the paper's Fig. 8-10 run this \
         matrix over four traces — see `cargo run -p edc-bench --release -- all`)"
    );
}
