//! RAIS array exploration: the paper's Fig. 11 platform, standalone.
//!
//! Builds RAIS0 and RAIS5 arrays of simulated SSDs, pushes small-write and
//! full-stripe workloads through them, and prints the parity small-write
//! penalty, device-level parallelism, and per-member wear — the mechanics
//! behind the paper's multi-device results. The final section exercises
//! the fault-tolerant data plane: compressed parity, a member kill served
//! by degraded reads, and an online rebuild.
//!
//! ```text
//! cargo run --release --example rais_array
//! ```

use edc::flash::{IoKind, RaisArray, RaisLevel, ReadMode};
use edc::prelude::*;

fn member() -> SsdConfig {
    SsdConfig { logical_bytes: 64 << 20, ..SsdConfig::default() }
}

fn main() {
    let chunk = 64 * 1024u64;

    println!("== small random 4 KiB writes: the RAIS5 write penalty ==");
    for (name, level, n) in [("RAIS0", RaisLevel::Rais0, 5), ("RAIS5", RaisLevel::Rais5, 5)] {
        let mut array = RaisArray::new(level, n, member(), chunk).expect("valid array shape");
        let mut now = 0u64;
        let mut x = 9u64;
        let mut total_ns = 0u64;
        const WRITES: u64 = 2000;
        for _ in 0..WRITES {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let offset = (x % (array.logical_bytes() / 4096)) * 4096;
            let c = array.submit(now, IoKind::Write, offset, 4096);
            total_ns += c.finish_ns - now;
            now = c.finish_ns;
        }
        let s = array.stats();
        println!(
            "{name}: avg write latency {:>7.1} us | device ops: {} reads + {} writes (host issued {WRITES})",
            total_ns as f64 / WRITES as f64 / 1000.0,
            s.reads,
            s.writes,
        );
    }

    println!("\n== full-stripe writes avoid read-modify-write ==");
    let mut array = RaisArray::new(RaisLevel::Rais5, 5, member(), chunk).expect("valid array shape");
    let row = 4 * chunk;
    let mut now = 0u64;
    for r in 0..64u64 {
        let c = array.submit(now, IoKind::Write, r * row, row as u32);
        now = c.finish_ns;
    }
    let s = array.stats();
    println!(
        "64 full-stripe writes: {} device reads (RMW avoided), {} device writes (4 data + 1 parity each)",
        s.reads, s.writes
    );

    println!("\n== parity rotation spreads wear across members ==");
    for d in 0..array.width() {
        let dev = array.device(d);
        println!(
            "  member {d}: {} writes, {} bytes written, {} erases",
            dev.stats().writes,
            dev.stats().bytes_written,
            dev.ftl_stats().erases
        );
    }

    println!("\n== array reads fan out in parallel ==");
    let mut array = RaisArray::new(RaisLevel::Rais0, 5, member(), chunk).expect("valid array shape");
    let c1 = array.submit(0, IoKind::Read, 0, chunk as u32);
    let one = c1.finish_ns - c1.start_ns;
    let now = c1.finish_ns;
    let c4 = array.submit(now, IoKind::Read, 0, 4 * chunk as u32);
    let four = c4.finish_ns - c4.start_ns;
    println!(
        "1-chunk read: {:.1} us; 4-chunk read: {:.1} us ({:.2}x, not 4x — four devices in parallel)",
        one as f64 / 1000.0,
        four as f64 / 1000.0,
        four as f64 / one as f64
    );

    println!("\n== compressed parity, member kill, degraded reads, online rebuild ==");
    let mut array =
        RaisArray::new(RaisLevel::Rais5, 5, member(), chunk).expect("valid array shape");
    // Store 16 rows of "compressed" chunks at a 4:1 ratio (16 KiB payloads
    // standing in for 64 KiB logical chunks).
    let rows = 16u64;
    let payload = |row: u64, pos: usize| -> Vec<u8> {
        (0..16 * 1024)
            .map(|i| ((i as u64).wrapping_mul(31) ^ row.wrapping_mul(7) ^ pos as u64) as u8)
            .collect()
    };
    let mut now = 0u64;
    for row in 0..rows {
        let legs: Vec<Vec<u8>> = (0..4).map(|pos| payload(row, pos)).collect();
        let refs: Vec<&[u8]> = legs.iter().map(|l| l.as_slice()).collect();
        let c = array.write_row(now, row, &refs).expect("healthy write");
        now = c.finish_ns;
    }
    let cap = array.capacity();
    println!(
        "parity written: {} KiB compressed vs {} KiB uncompressed control; virtual capacity {:.1} MiB over {:.1} MiB exported",
        cap.parity_bytes_written / 1024,
        cap.parity_control_bytes / 1024,
        cap.virtual_bytes as f64 / (1 << 20) as f64,
        cap.exported_bytes as f64 / (1 << 20) as f64,
    );

    array.kill_member(2).expect("member 2 exists");
    let mut degraded = 0u64;
    for row in 0..rows {
        for pos in 0..4 {
            let r = array.read_chunk(now, row, pos).expect("RAIS5 survives one failure");
            assert_eq!(r.data, payload(row, pos), "degraded read must be bit-identical");
            if r.mode == ReadMode::Degraded {
                degraded += 1;
            }
        }
    }
    println!("member 2 killed: all {} chunks still read bit-identical ({degraded} degraded)", rows * 4);

    let progress = array.rebuild(now, 2).expect("rebuild completes");
    println!(
        "rebuild: {} chunks / {} KiB reconstructed onto the replacement, {} lost",
        progress.reconstructed_chunks,
        progress.reconstructed_bytes / 1024,
        progress.lost_chunks,
    );
    array.verify_integrity().expect("array consistent after rebuild");
    println!("post-rebuild integrity: OK");
}
