//! HDD vs SSD under compression (paper §VI future work #2): the same
//! workload and schemes on both device models, side by side.
//!
//! On flash, compression's byte savings shorten transfers and defer GC;
//! on a disk, seeks dominate small random I/O and compression only adds
//! CPU — except for EDC, which notices load and backs off.
//!
//! ```text
//! cargo run --release --example hdd_vs_ssd
//! ```

use edc::core::{CalibrationConfig, ContentModel, EdcConfig, Policy, SimConfig, SimScheme};
use edc::datagen::DataMix;
use edc::flash::HddTiming;
use edc::prelude::*;
use edc::sim::replay::replay;
use edc::sim::Storage;
use edc::trace::TracePreset;
use std::sync::Arc;

fn main() {
    println!("generating a 60 s Usr_0-like enterprise trace...");
    let trace = TracePreset::Usr0.generate(60.0, 7);
    println!("  {} requests, {:.1} MiB\n", trace.requests.len(), trace.total_bytes() as f64 / (1 << 20) as f64);

    let content = Arc::new(ContentModel::calibrate(
        DataMix::primary_storage(),
        7,
        CalibrationConfig::default(),
    ));
    let sim = SimConfig { cpu_workers: 1, ..SimConfig::default() };
    let policies: [(&str, Policy); 4] = [
        ("Native", Policy::Native),
        ("Lzf", Policy::Fixed(CodecId::Lzf)),
        ("Gzip", Policy::Fixed(CodecId::Deflate)),
        ("EDC", Policy::Elastic(EdcConfig::default())),
    ];

    println!("{:>8} {:>16} {:>16} {:>10}", "scheme", "SSD resp (ms)", "HDD resp (ms)", "ratio");
    for (name, policy) in policies {
        let ssd = Storage::single(SsdConfig { logical_bytes: 256 << 20, ..SsdConfig::default() });
        let hdd = Storage::hdd(256 << 20, HddTiming::default());
        let mut s1 = SimScheme::new(policy.clone(), ssd, sim.clone(), content.clone());
        let mut s2 = SimScheme::new(policy, hdd, sim.clone(), content.clone());
        let r1 = replay(&trace, &mut s1);
        let r2 = replay(&trace, &mut s2);
        println!(
            "{:>8} {:>16.3} {:>16.3} {:>10.3}",
            name,
            r1.mean_response_ms(),
            r2.mean_response_ms(),
            r1.space.compression_ratio(),
        );
    }
    println!(
        "\nnote how the fixed schemes' SSD gains evaporate on the HDD (seek-\n\
         dominated service), while EDC adapts on both — the transfer the\n\
         paper's future-work section anticipated."
    );
}
