//! File-type semantic hints (paper §VI future work #1): a filesystem that
//! knows what lives where tells EDC, and EDC stops wasting effort.
//!
//! Writes the same media-heavy dataset twice — once blind, once with
//! hints — and compares wasted compression work and outcomes.
//!
//! ```text
//! cargo run --release --example type_hints
//! ```

use edc::core::hints::FileTypeHint;
use edc::datagen::{BlockClass, ContentGenerator, DataMix};
use edc::prelude::*;

/// A synthetic "volume layout": (extension, block range, content class).
const LAYOUT: &[(&str, u64, u64, BlockClass)] = &[
    ("log", 0, 64, BlockClass::Text),
    ("jpg", 64, 64, BlockClass::Media),
    ("sqlite", 128, 64, BlockClass::Binary),
    ("mp4", 192, 64, BlockClass::Media),
];

/// Per-extension tally of how runs were stored.
#[derive(Default, Clone)]
struct RangeOutcome {
    by_tag: std::collections::BTreeMap<&'static str, u64>,
}

fn run(with_hints: bool) -> (EdcPipeline, Vec<(&'static str, RangeOutcome)>) {
    let mut store = EdcPipeline::new(16 << 20, PipelineConfig::default());
    let mut generator = ContentGenerator::new(99, DataMix::primary_storage());
    if with_hints {
        for &(ext, start, blocks, _) in LAYOUT {
            if let Some(hint) = FileTypeHint::from_extension(ext) {
                store.set_hint(start * 4096, blocks * 4096, hint);
            }
        }
    }
    let mut outcomes: Vec<(&'static str, RangeOutcome)> =
        LAYOUT.iter().map(|&(ext, ..)| (ext, RangeOutcome::default())).collect();
    let mut record = |r: &WriteResult| {
        for (i, &(_, start, blocks, _)) in LAYOUT.iter().enumerate() {
            if r.start_block >= start && r.start_block < start + blocks {
                let tag = match r.tag {
                    CodecId::None => "store",
                    other => other.name(),
                };
                *outcomes[i].1.by_tag.entry(tag).or_default() += u64::from(r.blocks);
            }
        }
    };
    let mut t = 0u64;
    for &(_, start, blocks, class) in LAYOUT {
        for b in start..start + blocks {
            let data = generator.block_of(class, 4096);
            if let Some(r) = store.write(t, b * 4096, &data).expect("write") {
                record(&r);
            }
            t += 20_000_000; // 50 writes/s: idle, ladder would pick Gzip
        }
    }
    if let Some(r) = store.flush(t).expect("flush") {
        record(&r);
    }
    (store, outcomes)
}

fn main() {
    println!("volume layout: 64 blocks each of .log, .jpg, .sqlite, .mp4\n");
    for with_hints in [false, true] {
        let (store, outcomes) = run(with_hints);
        println!("== {} ==", if with_hints { "with file-type hints" } else { "blind" });
        for (ext, o) in &outcomes {
            let parts: Vec<String> =
                o.by_tag.iter().map(|(tag, n)| format!("{n} blocks {tag}")).collect();
            println!("  .{ext:<7} {}", parts.join(", "));
        }
        println!("  ratio {:.3}\n", store.stats().compression_ratio());
    }
    println!(
        "hints veto the estimator sampling on .jpg/.mp4 (same outcome, zero probe\n\
         work) and cap .sqlite at the fast Lzf tier instead of idle-time Gzip —\n\
         trading a little ratio for database read/write latency."
    );
}
