//! Acceptance tests for the paper's quantitative claims, at reduced scale
//! (the full-scale versions are the `edc-bench` experiments; these keep
//! the claims from regressing in CI).

use edc::compress::{codec_by_id, CodecId};
use edc::core::{
    CalibrationConfig, ContentModel, EdcConfig, Policy, SelectorConfig, SimConfig, SimScheme,
};
use edc::datagen::corpus::{firefox_binary_like, linux_source_like};
use edc::datagen::DataMix;
use edc::flash::{IoKind, SsdConfig, SsdDevice};
use edc::sim::replay::{replay, ReplayReport};
use edc::sim::Storage;
use edc::trace::TracePreset;
use std::sync::Arc;

fn content() -> Arc<ContentModel> {
    Arc::new(ContentModel::calibrate(
        DataMix::primary_storage(),
        42,
        CalibrationConfig { samples: 1, small_bytes: 4096, large_bytes: 16384 },
    ))
}

fn run(policy: Policy, trace: &edc::trace::Trace, c: &Arc<ContentModel>) -> ReplayReport {
    let storage = Storage::single(SsdConfig { logical_bytes: 128 << 20, ..SsdConfig::default() });
    let mut scheme = SimScheme::new(
        policy,
        storage,
        SimConfig { cpu_workers: 1, precondition: 0.8, ..SimConfig::default() },
        c.clone(),
    );
    replay(trace, &mut scheme)
}

/// §II-A / Fig. 1: "the response time of a flash-based storage system
/// tends to increase linearly with the request size."
#[test]
fn claim_response_linear_in_request_size() {
    let mut dev = SsdDevice::new(SsdConfig::default());
    let service = |dev: &mut SsdDevice, kib: u32| -> f64 {
        let now = dev.busy_until();
        let c = dev.submit(now, IoKind::Read, 0, kib * 1024);
        (c.finish_ns - c.start_ns) as f64
    };
    let t4 = service(&mut dev, 4);
    let t64 = service(&mut dev, 64);
    let t256 = service(&mut dev, 256);
    // Linear fit through (4,t4) and (64,t64) must predict t256 within 5 %.
    let slope = (t64 - t4) / 60.0;
    let predicted = t64 + slope * 192.0;
    assert!(
        (t256 - predicted).abs() / t256 < 0.05,
        "nonlinear: t256 {t256}, predicted {predicted}"
    );
}

/// §II-B / Fig. 2: the ratio/speed trade-off ordering across algorithms.
#[test]
fn claim_fig2_tradeoff_ordering() {
    for corpus in [linux_source_like(3, 6, 32768), firefox_binary_like(3, 6, 32768)] {
        let total: usize = corpus.total_bytes();
        let size = |id: CodecId| -> usize {
            let codec = codec_by_id(id).unwrap();
            corpus.blocks.iter().map(|b| codec.compress(b).len()).sum()
        };
        let lzf = size(CodecId::Lzf);
        let gzip = size(CodecId::Deflate);
        let bzip2 = size(CodecId::Bwt);
        assert!(bzip2 < gzip, "{}: bzip2 {bzip2} !< gzip {gzip}", corpus.name);
        assert!(gzip < lzf, "{}: gzip {gzip} !< lzf {lzf}", corpus.name);
        assert!(lzf <= total, "{}: lzf must not expand materially", corpus.name);
    }
}

/// Abstract claim: "EDC saves storage space by up to 38.7%, with an
/// average of 33.7%" — we assert the reproduction's EDC saves 25–50 % on
/// every paper trace.
#[test]
fn claim_edc_space_saving_in_paper_range() {
    let c = content();
    for preset in TracePreset::ALL {
        let trace = preset.generate(30.0, 42);
        let edc = run(Policy::Elastic(EdcConfig::default()), &trace, &c);
        let saving = edc.space.space_saving();
        assert!(
            (0.20..0.55).contains(&saving),
            "{}: saving {saving:.3} outside the plausible band",
            preset.name()
        );
    }
}

/// Fig. 8 ordering: Lzf ≤ EDC ≤ Gzip ≤ Bzip2 in ratio, per trace.
#[test]
fn claim_fig8_ratio_ordering() {
    let c = content();
    let trace = TracePreset::Fin1.generate(30.0, 7);
    let lzf = run(Policy::Fixed(CodecId::Lzf), &trace, &c).space.compression_ratio();
    let gzip = run(Policy::Fixed(CodecId::Deflate), &trace, &c).space.compression_ratio();
    let bzip2 = run(Policy::Fixed(CodecId::Bwt), &trace, &c).space.compression_ratio();
    let edc = run(Policy::Elastic(EdcConfig::default()), &trace, &c).space.compression_ratio();
    assert!(lzf < gzip && gzip < bzip2, "fixed ordering: {lzf} {gzip} {bzip2}");
    assert!(edc > lzf * 0.97, "EDC {edc} must not fall materially below Lzf {lzf}");
    assert!(edc < bzip2, "EDC {edc} must stay below Bzip2 {bzip2}");
}

/// Fig. 10 claim: EDC beats every fixed scheme on response time, and
/// Bzip2 is the disaster case.
#[test]
fn claim_fig10_response_ordering() {
    let c = content();
    let trace = TracePreset::Fin1.generate(30.0, 11);
    let native = run(Policy::Native, &trace, &c).overall.mean_ns;
    let lzf = run(Policy::Fixed(CodecId::Lzf), &trace, &c).overall.mean_ns;
    let bzip2 = run(Policy::Fixed(CodecId::Bwt), &trace, &c).overall.mean_ns;
    let edc = run(Policy::Elastic(EdcConfig::default()), &trace, &c).overall.mean_ns;
    assert!(edc < lzf, "EDC {edc} !< Lzf {lzf}");
    assert!(bzip2 > 2 * native, "Bzip2 {bzip2} must blow up vs native {native}");
}

/// §III-E claim: "the overall read response times are not affected" —
/// on the read-dominated trace, EDC's reads stay within 15 % of Native's.
#[test]
fn claim_reads_essentially_unaffected() {
    let c = content();
    let trace = TracePreset::Fin2.generate(30.0, 13);
    let native = run(Policy::Native, &trace, &c);
    let edc = run(Policy::Elastic(EdcConfig::default()), &trace, &c);
    let ratio = edc.reads.mean_ns as f64 / native.reads.mean_ns as f64;
    assert!(
        ratio < 1.15,
        "EDC reads {ratio:.3}x native — the paper claims unaffected"
    );
}

/// Fig. 12 claim: compression ratio rises monotonically with the Gzip
/// band, and response time rises with it.
#[test]
fn claim_fig12_monotone_tradeoff() {
    let c = content();
    let trace = TracePreset::Fin2.generate(30.0, 17);
    let mut prev_ratio = 0.0;
    let mut ratios = Vec::new();
    let mut resp = Vec::new();
    for gzip_below in [1e-9, 300.0, 1200.0, 3999.0] {
        let cfg = EdcConfig {
            selector: SelectorConfig::two_level(gzip_below, 4000.0),
            ..EdcConfig::default()
        };
        let r = run(Policy::Elastic(cfg), &trace, &c);
        let ratio = r.space.compression_ratio();
        assert!(ratio >= prev_ratio - 1e-9, "ratio must not fall: {ratios:?} then {ratio}");
        prev_ratio = ratio;
        ratios.push(ratio);
        resp.push(r.overall.mean_ns);
    }
    assert!(ratios.last().unwrap() > &(ratios[0] + 0.05), "sweep must move ratio");
    assert!(
        resp.last().unwrap() > resp.first().unwrap(),
        "more Gzip must cost response time: {resp:?}"
    );
}

/// §III-A objective 3: compression reduces erase cycles (endurance).
#[test]
fn claim_compression_reduces_erases() {
    let c = content();
    let trace = TracePreset::Prxy0.generate(40.0, 19);
    let native = run(Policy::Native, &trace, &c);
    let edc = run(Policy::Elastic(EdcConfig::default()), &trace, &c);
    assert!(
        edc.ftl.erases < native.ftl.erases,
        "EDC {} erases !< native {}",
        edc.ftl.erases,
        native.ftl.erases
    );
    assert!(edc.device.bytes_written < native.device.bytes_written);
}
