//! Integration of the trace parsers with the replay engine: real-format
//! trace text drives the full EDC stack.

use edc::core::{CalibrationConfig, ContentModel, EdcConfig, Policy, SimConfig, SimScheme};
use edc::datagen::DataMix;
use edc::flash::SsdConfig;
use edc::sim::replay::replay;
use edc::sim::Storage;
use edc::trace::{msr, spc, OpType, Request, Trace};
use std::fmt::Write as _;
use std::sync::Arc;

fn scheme(policy: Policy) -> SimScheme {
    let content = Arc::new(ContentModel::calibrate(
        DataMix::primary_storage(),
        3,
        CalibrationConfig { samples: 1, small_bytes: 4096, large_bytes: 16384 },
    ));
    let storage = Storage::single(SsdConfig { logical_bytes: 32 << 20, ..SsdConfig::default() });
    SimScheme::new(policy, storage, SimConfig { cpu_workers: 1, ..SimConfig::default() }, content)
}

/// Build SPC-format text from a request list (the inverse of the parser).
fn to_spc(requests: &[Request]) -> String {
    let mut out = String::new();
    for r in requests {
        let _ = writeln!(
            out,
            "0,{},{},{},{:.6}",
            r.offset / 512,
            r.len,
            if r.op == OpType::Read { "r" } else { "w" },
            r.arrival_ns as f64 / 1e9
        );
    }
    out
}

/// Build MSR-format text from a request list.
fn to_msr(requests: &[Request]) -> String {
    let base: u64 = 128_166_372_000_000_000;
    let mut out = String::new();
    for r in requests {
        let _ = writeln!(
            out,
            "{},usr,0,{},{},{},0",
            base + r.arrival_ns / 100,
            if r.op == OpType::Read { "Read" } else { "Write" },
            r.offset,
            r.len
        );
    }
    out
}

fn sample_requests() -> Vec<Request> {
    let mut reqs = Vec::new();
    let mut x = 77u64;
    for i in 0..400u64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        reqs.push(Request {
            arrival_ns: i * 2_000_000,
            op: if x.is_multiple_of(5) { OpType::Read } else { OpType::Write },
            offset: (x % 4096) * 4096,
            len: 4096 * (1 + (x >> 32) % 4) as u32,
        });
    }
    reqs
}

#[test]
fn spc_text_round_trips_through_parser() {
    let reqs = sample_requests();
    let text = to_spc(&reqs);
    let trace = spc::parse("Fin1", &text, None).expect("valid SPC text");
    assert_eq!(trace.requests.len(), reqs.len());
    for (a, b) in trace.requests.iter().zip(&reqs) {
        assert_eq!(a.op, b.op);
        assert_eq!(a.offset, b.offset);
        assert_eq!(a.len, b.len);
        // Timestamps go through seconds-precision text: microsecond exact.
        assert!((a.arrival_ns as i64 - b.arrival_ns as i64).abs() < 1000);
    }
}

#[test]
fn msr_text_round_trips_through_parser() {
    let reqs = sample_requests();
    let text = to_msr(&reqs);
    let trace = msr::parse("Usr_0", &text, None).expect("valid MSR text");
    assert_eq!(trace.requests.len(), reqs.len());
    for (a, b) in trace.requests.iter().zip(&reqs) {
        assert_eq!(a.op, b.op);
        assert_eq!(a.offset, b.offset);
        assert_eq!(a.len, b.len);
        assert_eq!(a.arrival_ns, b.arrival_ns); // 100 ns ticks are exact here
    }
}

#[test]
fn parsed_spc_trace_replays_through_edc() {
    let text = to_spc(&sample_requests());
    let trace = spc::parse("Fin1-sample", &text, None).unwrap();
    let mut s = scheme(Policy::Elastic(EdcConfig::default()));
    let report = replay(&trace, &mut s);
    assert_eq!(report.overall.count, trace.requests.len() as u64);
    assert!(report.space.compression_ratio() >= 1.0);
    assert_eq!(report.trace, "Fin1-sample");
}

#[test]
fn parsed_msr_trace_replays_through_native_and_edc() {
    let text = to_msr(&sample_requests());
    let trace = msr::parse("Usr_0-sample", &text, None).unwrap();
    let mut native = scheme(Policy::Native);
    let mut edc = scheme(Policy::Elastic(EdcConfig::default()));
    let rn = replay(&trace, &mut native);
    let re = replay(&trace, &mut edc);
    assert_eq!(rn.overall.count, re.overall.count);
    assert!(re.space.compression_ratio() >= rn.space.compression_ratio());
}

#[test]
fn trace_type_is_interchangeable_between_sources() {
    // Synthetic and parsed traces are the same type and replay identically
    // when they contain the same requests.
    let reqs = sample_requests();
    let synthetic = Trace::new("x", reqs.clone());
    let parsed = spc::parse("x", &to_spc(&reqs), None).unwrap();
    let mut s1 = scheme(Policy::Fixed(edc::compress::CodecId::Lzf));
    let mut s2 = scheme(Policy::Fixed(edc::compress::CodecId::Lzf));
    let r1 = replay(&synthetic, &mut s1);
    let r2 = replay(&parsed, &mut s2);
    assert_eq!(r1.space, r2.space);
    // Sub-microsecond timestamp rounding through text may shift latencies
    // by at most the rounding error.
    let diff = (r1.overall.mean_ns as i64 - r2.overall.mean_ns as i64).abs();
    assert!(diff < 2_000, "latency drift {diff} ns");
}
