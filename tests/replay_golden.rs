//! Golden record/replay fixture: a committed `.edcrr` op log (generated
//! once by `edc-bench record-golden`) must replay bit-exactly against a
//! freshly built store, forever. Any divergence means the engine's
//! observable behaviour changed — which is either a bug, or an
//! intentional change that must regenerate the fixture with
//! `cargo run -p edc-bench -- record-golden tests/fixtures/golden_sharded.edcrr`.

use edc::prelude::*;

fn fixture_bytes(name: &str) -> Vec<u8> {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    std::fs::read(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

#[test]
fn golden_sharded_log_replays_bit_exactly() {
    let bytes = fixture_bytes("golden_sharded.edcrr");
    let report = Replayer::replay(&bytes).expect("golden log parses");
    assert!(!report.torn_tail, "golden log has a torn tail");
    assert!(
        report.is_exact(),
        "golden log diverged at {} of {} op(s); first: {}",
        report.divergences.len(),
        report.ops,
        report.divergences.first().map(|d| d.to_string()).unwrap_or_default()
    );
    assert!(report.ops > 30, "golden log unexpectedly short ({} ops)", report.ops);
}

#[test]
fn golden_log_spec_is_the_documented_shape() {
    // The fixture exercises the sharded + parity + multi-worker path; if
    // a regeneration silently changed the shape, fail loudly here rather
    // than quietly testing less.
    let bytes = fixture_bytes("golden_sharded.edcrr");
    let log = edc::core::parse_edcrr(&bytes).expect("golden log parses");
    assert_eq!(log.spec.shards, 2);
    assert!(log.spec.parity);
    assert_eq!(log.spec.workers, 2);
    assert!(log.spec.dedup, "fixture must exercise the dedup front-end");
    assert!(log.spec.fast_ladder, "fixture records on the fast rung so passes have work");
    assert!(!log.torn_tail);
}

#[test]
fn reshaped_store_refuses_single_device_golden_log() {
    // An array-backed campaign (RAIS over five members) presents a
    // different store geometry than the single-device spec this golden
    // was recorded against. Declaring that shape to the replayer must
    // produce a typed refusal before any op is dispatched — never a
    // silent wall of digest divergences.
    let bytes = fixture_bytes("golden_sharded.edcrr");
    let recorded = edc::core::parse_edcrr(&bytes).expect("golden log parses").spec;
    let array_shaped = StoreSpec {
        capacity_bytes: 5 * recorded.capacity_bytes,
        shards: 5,
        ..recorded
    };
    match Replayer::replay_as(&array_shaped, &bytes) {
        Err(ReplayRefusal::SpecMismatch { field, .. }) => {
            assert_eq!(field, "capacity_bytes");
        }
        Ok(report) => panic!(
            "reshaped store replayed {} op(s) with {} divergence(s) instead of refusing",
            report.ops,
            report.divergences.len()
        ),
        Err(other) => panic!("expected a spec mismatch, got {other}"),
    }
    // The declared-shape path still accepts the true shape, and a
    // replay-machine worker-count difference is explicitly tolerated.
    let same = StoreSpec { workers: recorded.workers + 2, ..recorded };
    let report = Replayer::replay_as(&same, &bytes).expect("true shape accepted");
    assert!(report.is_exact());
}

#[test]
fn corrupting_any_golden_byte_is_detected() {
    // Flip one byte in a handful of positions spread across the log:
    // parse must flag a torn/corrupt record (or the replay must diverge)
    // — silence is the only failure.
    let clean = fixture_bytes("golden_sharded.edcrr");
    for frac in [3, 5, 7, 11] {
        let mut bytes = clean.clone();
        let at = bytes.len() / frac;
        bytes[at] ^= 0x01;
        // Header corruption is a hard parse error (also fine); anything
        // that parses must report a divergence or a torn tail.
        if let Ok(report) = Replayer::replay(&bytes) {
            assert!(
                !report.is_exact(),
                "byte flip at {at} went unnoticed ({} ops replayed)",
                report.ops
            );
        }
    }
}
