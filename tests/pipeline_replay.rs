//! The heaviest end-to-end test: a synthetic workload replayed through the
//! *real-bytes* EDC pipeline — actual content, actual compression, actual
//! mapping and slot allocation — with a shadow copy verifying every read
//! and final state byte-for-byte.

use edc::core::pipeline::{EdcPipeline, PipelineConfig};
use edc::datagen::{BlockClass, ContentGenerator};
use edc::trace::{OpType, SynthConfig, Trace};
use std::collections::HashMap;

const BLOCK: u64 = 4096;
/// Pipeline capacity: 32 MiB = 8192 logical blocks.
const CAPACITY: u64 = 32 << 20;

/// Deterministic content for (block, version): every overwrite of a block
/// gets fresh content so stale reads are detectable.
fn content_for(block: u64, version: u64) -> Vec<u8> {
    let class = match (block ^ version) % 5 {
        0 => BlockClass::Text,
        1 => BlockClass::Code,
        2 => BlockClass::Binary,
        3 => BlockClass::Media,
        _ => BlockClass::Zero,
    };
    let mut g = ContentGenerator::pure(block.wrapping_mul(31) ^ version, class);
    g.block_of(class, BLOCK as usize)
}

fn workload() -> Trace {
    SynthConfig {
        duration_s: 30.0,
        on_rate: 600.0,
        off_rate: 20.0,
        mean_on_s: 1.0,
        mean_off_s: 1.5,
        read_fraction: 0.35,
        size_dist: vec![(4096, 0.6), (8192, 0.25), (16384, 0.15)],
        seq_prob: 0.45,
        volume_bytes: CAPACITY,
        batch_mean: 4.0,
    }
    .generate("pipeline-replay", 2026)
}

#[test]
fn real_bytes_pipeline_survives_full_workload() {
    let trace = workload();
    assert!(trace.requests.len() > 2000, "need a substantial workload");
    let mut store = EdcPipeline::new(CAPACITY, PipelineConfig::default());
    // Shadow state: block -> current version.
    let mut shadow: HashMap<u64, u64> = HashMap::new();
    let mut version = 0u64;
    let mut writes = 0u64;
    let mut verified_reads = 0u64;

    for req in &trace.requests {
        let start_block = (req.offset % CAPACITY) / BLOCK;
        let nblocks = (u64::from(req.len)).div_ceil(BLOCK).max(1);
        let nblocks = nblocks.min(CAPACITY / BLOCK - start_block);
        match req.op {
            OpType::Write => {
                version += 1;
                let mut data = Vec::with_capacity((nblocks * BLOCK) as usize);
                for b in start_block..start_block + nblocks {
                    data.extend(content_for(b, version));
                    shadow.insert(b, version);
                }
                store.write(req.arrival_ns, start_block * BLOCK, &data).expect("write");
                writes += 1;
            }
            OpType::Read => {
                let got = store
                    .read(req.arrival_ns, start_block * BLOCK, nblocks * BLOCK)
                    .expect("read must succeed");
                for (i, b) in (start_block..start_block + nblocks).enumerate() {
                    let slice = &got[i * BLOCK as usize..(i + 1) * BLOCK as usize];
                    match shadow.get(&b) {
                        Some(&v) => {
                            assert_eq!(
                                slice,
                                content_for(b, v).as_slice(),
                                "block {b} returned wrong content"
                            );
                            verified_reads += 1;
                        }
                        None => {
                            assert!(
                                slice.iter().all(|&x| x == 0),
                                "unwritten block {b} must read zero"
                            );
                        }
                    }
                }
            }
        }
    }
    store.flush(u64::MAX / 2).expect("flush");

    // Final sweep: every shadowed block must decompress to its last write.
    // (Bounded to 1500 blocks; coverage is already random.)
    for (&b, &v) in shadow.iter().take(1500) {
        let got = store.read(u64::MAX / 2, b * BLOCK, BLOCK).expect("final read");
        assert_eq!(got, content_for(b, v), "final state of block {b}");
    }

    assert!(writes > 1000, "workload must write, got {writes}");
    assert!(verified_reads > 200, "workload must verify reads, got {verified_reads}");
    assert!(
        store.stats().compression_ratio() > 1.2,
        "mixed content must compress, ratio {}",
        store.stats().compression_ratio()
    );
    // The allocator must have seen both compressed and write-through runs.
    let stats = store.alloc_stats();
    assert!(stats.write_through > 0, "media/random blocks must write through");
    assert!(stats.placements > stats.write_through, "most runs must compress");
}
