//! Cross-crate integration: generated workloads and content flowing
//! through the full simulation and the real-bytes pipeline.

use edc::compress::{codec_by_id, CodecId};
use edc::core::pipeline::{EdcPipeline, PipelineConfig};
use edc::core::{
    CalibrationConfig, ContentModel, EdcConfig, Policy, SimConfig, SimScheme,
};
use edc::datagen::{BlockClass, ContentGenerator, DataMix};
use edc::flash::SsdConfig;
use edc::sim::replay::{replay, ReplayReport};
use edc::sim::Storage;
use edc::trace::{Trace, TracePreset};
use std::sync::Arc;

fn content() -> Arc<ContentModel> {
    Arc::new(ContentModel::calibrate(
        DataMix::primary_storage(),
        5,
        CalibrationConfig { samples: 1, small_bytes: 4096, large_bytes: 16384 },
    ))
}

fn storage() -> Storage {
    Storage::single(SsdConfig { logical_bytes: 64 << 20, ..SsdConfig::default() })
}

fn sim() -> SimConfig {
    SimConfig { cpu_workers: 1, ..SimConfig::default() }
}

fn run(policy: Policy, trace: &Trace, c: &Arc<ContentModel>) -> ReplayReport {
    let mut scheme = SimScheme::new(policy, storage(), sim(), c.clone());
    replay(trace, &mut scheme)
}

#[test]
fn full_matrix_on_synthetic_fin1() {
    let trace = TracePreset::Fin1.generate(20.0, 99);
    let c = content();
    let native = run(Policy::Native, &trace, &c);
    let lzf = run(Policy::Fixed(CodecId::Lzf), &trace, &c);
    let gzip = run(Policy::Fixed(CodecId::Deflate), &trace, &c);
    let bzip2 = run(Policy::Fixed(CodecId::Bwt), &trace, &c);
    let edc = run(Policy::Elastic(EdcConfig::default()), &trace, &c);

    // Every scheme must complete every request.
    let n = trace.requests.len() as u64;
    for r in [&native, &lzf, &gzip, &bzip2, &edc] {
        assert_eq!(r.overall.count, n, "{} lost requests", r.scheme);
    }
    // Ratio ordering (paper Fig. 8): Native < Lzf ≤ EDC ≤ Gzip < Bzip2.
    let rat = |r: &ReplayReport| r.space.compression_ratio();
    assert_eq!(rat(&native), 1.0);
    assert!(rat(&lzf) > 1.2);
    assert!(rat(&gzip) > rat(&lzf));
    assert!(rat(&bzip2) > rat(&gzip));
    assert!(rat(&edc) > rat(&lzf) * 0.95, "EDC {} vs Lzf {}", rat(&edc), rat(&lzf));
    assert!(rat(&edc) < rat(&bzip2));
    // Response ordering (paper Fig. 10): EDC fastest of the compressed
    // schemes; Bzip2 slowest by a wide margin.
    let ms = |r: &ReplayReport| r.overall.mean_ns;
    assert!(ms(&edc) < ms(&lzf), "EDC {} !< Lzf {}", ms(&edc), ms(&lzf));
    assert!(ms(&lzf) < ms(&gzip));
    assert!(ms(&gzip) < ms(&bzip2));
    assert!(ms(&bzip2) > 2 * ms(&native), "Bzip2 must visibly hurt latency");
    // Composite (paper Fig. 9): EDC best overall.
    for r in [&native, &lzf, &gzip, &bzip2] {
        assert!(
            edc.composite() > r.composite(),
            "EDC composite {} !> {} {}",
            edc.composite(),
            r.scheme,
            r.composite()
        );
    }
}

#[test]
fn replay_is_deterministic_end_to_end() {
    let trace = TracePreset::Usr0.generate(15.0, 7);
    let c = content();
    let a = run(Policy::Elastic(EdcConfig::default()), &trace, &c);
    let b = run(Policy::Elastic(EdcConfig::default()), &trace, &c);
    assert_eq!(a.overall, b.overall);
    assert_eq!(a.space, b.space);
    assert_eq!(a.ftl, b.ftl);
}

#[test]
fn compression_reduces_device_writes_and_erases() {
    // The endurance argument (paper §III-A objective 3): compressed
    // schemes write fewer bytes, so the FTL erases less.
    let trace = TracePreset::Prxy0.generate(30.0, 3);
    let c = content();
    let native = run(Policy::Native, &trace, &c);
    let lzf = run(Policy::Fixed(CodecId::Lzf), &trace, &c);
    assert!(
        lzf.device.bytes_written < native.device.bytes_written,
        "lzf {} !< native {}",
        lzf.device.bytes_written,
        native.device.bytes_written
    );
    assert!(lzf.ftl.erases <= native.ftl.erases);
}

#[test]
fn pipeline_stores_datagen_content_losslessly() {
    // Real bytes through the real pipeline: every content class, mixed
    // write sizes, interleaved reads.
    let mut store = EdcPipeline::new(8 << 20, PipelineConfig::default());
    let mut generator = ContentGenerator::new(31, DataMix::primary_storage());
    let mut written: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut t = 0u64;
    for i in 0..100u64 {
        let blocks = 1 + (i % 4) as usize;
        let mut data = Vec::new();
        for _ in 0..blocks {
            data.extend(generator.block(4096).1);
        }
        let offset = (i * 7 % 1500) * 4096;
        // Overwrites of earlier offsets are part of the test.
        written.retain(|(o, d)| o + d.len() as u64 <= offset || *o >= offset + data.len() as u64);
        store.write(t, offset, &data).expect("write");
        written.push((offset, data));
        t += 1_000_000;
        if i % 7 == 0 {
            // Interleaved read of the most recent write (flushes the SD).
            let (o, d) = written.last().unwrap().clone();
            assert_eq!(store.read(t, o, d.len() as u64).unwrap(), d);
        }
    }
    store.flush(t).expect("flush");
    for (o, d) in &written {
        assert_eq!(&store.read(t, *o, d.len() as u64).unwrap(), d, "offset {o}");
    }
    assert!(store.stats().compression_ratio() > 1.0);
}

#[test]
fn pipeline_tags_match_real_codecs() {
    // A compressible block stored by the pipeline must decompress with
    // the advertised codec from the raw device image semantics — verified
    // indirectly: write-through of random data, compression of text.
    let mut store = EdcPipeline::new(1 << 20, PipelineConfig::default());
    let mut generator = ContentGenerator::new(8, DataMix::primary_storage());
    let text = generator.block_of(BlockClass::Text, 4096);
    let noise = generator.block_of(BlockClass::Random, 4096);
    store.write(0, 0, &text).unwrap();
    let r1 = store.flush(1).unwrap().unwrap();
    store.write(2, 8192, &noise).unwrap();
    let r2 = store.flush(3).unwrap().unwrap();
    assert_ne!(r1.tag, CodecId::None, "text must compress");
    assert!(r1.payload_bytes < 4096);
    assert_eq!(r2.tag, CodecId::None, "noise must be written through");
    // And the payload sizes are consistent with running the codec directly.
    if let Some(codec) = codec_by_id(r1.tag) {
        assert_eq!(codec.compress(&text).len() as u64, r1.payload_bytes);
    }
}

#[test]
fn estimator_and_codecs_agree_on_datagen_classes() {
    // The estimator (which EDC trusts for the 75 % rule) must agree with
    // actual Lzf output on which datagen classes are incompressible.
    let estimator = edc::compress::Estimator::default();
    let lzf = codec_by_id(CodecId::Lzf).unwrap();
    let mut generator = ContentGenerator::new(17, DataMix::primary_storage());
    for class in BlockClass::ALL {
        let mut est_wt = 0i32;
        let mut real_wt = 0i32;
        const N: usize = 12;
        for _ in 0..N {
            let b = generator.block_of(class, 4096);
            if estimator.is_incompressible(&b) {
                est_wt += 1;
            }
            if lzf.compress(&b).len() > 3 * 4096 / 4 {
                real_wt += 1;
            }
        }
        let diff = (est_wt - real_wt).abs();
        assert!(
            diff <= N as i32 / 3,
            "{class:?}: estimator said {est_wt}/{N} write-through, lzf said {real_wt}/{N}"
        );
    }
}

#[test]
fn edc_write_through_dominates_for_incompressible_mix() {
    // A pure-random workload: EDC must end up storing essentially
    // everything uncompressed and match Native's space.
    let c = Arc::new(ContentModel::calibrate(
        DataMix::pure(BlockClass::Random),
        5,
        CalibrationConfig { samples: 1, small_bytes: 4096, large_bytes: 16384 },
    ));
    let trace = TracePreset::Fin1.generate(10.0, 2);
    let edc = run(Policy::Elastic(EdcConfig::default()), &trace, &c);
    assert!(
        edc.space.compression_ratio() < 1.05,
        "random content must not 'compress', got {}",
        edc.space.compression_ratio()
    );
}

#[test]
fn edc_works_on_rais5_and_hdd_platforms() {
    // The scheme must be platform-agnostic: RAIS5 (paper Fig. 11) and the
    // HDD backend (paper §VI future work) run the same policy unchanged.
    let trace = TracePreset::Fin2.generate(10.0, 23);
    let c = content();
    let platforms: Vec<(&str, Storage)> = vec![
        (
            "rais5",
            Storage::rais(
                edc::flash::RaisLevel::Rais5,
                5,
                SsdConfig { logical_bytes: 64 << 20, ..SsdConfig::default() },
            )
            .expect("valid RAIS5 shape"),
        ),
        ("hdd", Storage::hdd(256 << 20, edc::flash::HddTiming::default())),
    ];
    for (name, storage) in platforms {
        let mut scheme = SimScheme::new(
            Policy::Elastic(EdcConfig::default()),
            storage,
            sim(),
            c.clone(),
        );
        let report = replay(&trace, &mut scheme);
        assert_eq!(report.overall.count, trace.requests.len() as u64, "{name} lost requests");
        assert!(report.space.compression_ratio() > 1.1, "{name} must compress");
        assert!(report.overall.mean_ns > 0);
    }
}

#[test]
fn wear_leveling_config_reaches_the_scheme_device() {
    // SsdConfig::wear_level_threshold flows through Storage into the FTL.
    let trace = TracePreset::Prxy0.generate(20.0, 3);
    let c = content();
    let cfg = SsdConfig {
        logical_bytes: 32 << 20,
        wear_level_threshold: 4,
        ..SsdConfig::default()
    };
    let mut scheme = SimScheme::new(
        Policy::Native,
        Storage::single(cfg),
        SimConfig { precondition: 1.0, ..sim() },
        c,
    );
    let report = replay(&trace, &mut scheme);
    if report.wear.total_erases > 50 {
        // With WL active the spread stays bounded.
        assert!(report.wear.gini < 0.9, "wear too concentrated: {}", report.wear.gini);
    }
}
